(** Algorithms 2 and 3: the scheduler for hierarchical assignments (§IV).

    Phase 1 ({!allocate}, Algorithm 2) walks the laminar family bottom-up
    and greedily splits the volume of each set [α] over its machines,
    filling every machine to the horizon before touching the next one.
    Phase 2 ({!schedule}, Algorithm 3) walks top-down and lays each set's
    jobs on a wrap-around tape that starts right after the unique machine
    (Lemma IV.2) already carrying load from an ancestor set.

    Theorem IV.3: for any assignment satisfying (IP-2) with horizon [T],
    the produced schedule is valid in [[0, T]]. *)

open Hs_model
open Hs_laminar

(* Telemetry: scheduler output volume and Prop. III.2 event counts,
   shared with the semi-partitioned scheduler (same counter names). *)
module Obs = struct
  let segments = Hs_obs.Metrics.counter "sched.segments"
  let migrations = Hs_obs.Metrics.counter "sched.migrations"
  let preemptions = Hs_obs.Metrics.counter "sched.preemptions"

  let record (sched : Schedule.t) (stats : Tape.stats) =
    Hs_obs.Metrics.add segments (List.length (Schedule.segments sched));
    Hs_obs.Metrics.add migrations stats.Tape.migrations;
    Hs_obs.Metrics.add preemptions stats.Tape.preemptions
end

type allocation = {
  load : int array array;  (** [load.(set).(machine)] — Algorithm 2's LOAD *)
  tot_load : int array array;  (** Algorithm 2's TOT-LOAD *)
}

(* The maximal proper subset of [set] containing [machine] is, in forest
   terms, the unique child containing it. *)
let child_containing lam set machine =
  List.find_opt (fun c -> Laminar.mem lam c machine) (Laminar.children lam set)

let allocate inst assignment ~tmax =
  let lam = Instance.laminar inst in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if not (Assignment.well_formed inst assignment) then err "hierarchical: ill-formed assignment"
  else if Assignment.max_ptime inst assignment > tmax then
    err "hierarchical: some job exceeds the horizon (2c)"
  else begin
    let nsets = Laminar.size lam in
    let m = Laminar.m lam in
    let load = Array.make_matrix nsets m 0 in
    let tot_load = Array.make_matrix nsets m 0 in
    let p j s = Ptime.value_exn (Instance.ptime inst ~job:j ~set:s) in
    let volume set =
      let v = ref 0 in
      Array.iteri (fun j s -> if s = set then v := !v + p j s) assignment;
      !v
    in
    let exception Overflow of int in
    try
      List.iter
        (fun set ->
          let v = ref (volume set) in
          Array.iter
            (fun i ->
              let prev =
                match child_containing lam set i with
                | Some beta -> tot_load.(beta).(i)
                | None -> 0
              in
              let capacity = tmax - prev in
              let delta = Stdlib.min !v capacity in
              load.(set).(i) <- delta;
              tot_load.(set).(i) <- prev + delta;
              v := !v - delta)
            (Laminar.members lam set);
          if !v > 0 then raise (Overflow set))
        (Laminar.bottom_up lam);
      Ok { load; tot_load }
    with Overflow set -> err "hierarchical: volume of set #%d exceeds capacity (2b)" set
  end

(** Lemma IV.2 as a checkable property: for every set β, at most one
    machine carries positive load for both β and some strict superset. *)
let lemma_iv2_holds lam alloc =
  List.for_all
    (fun beta ->
      let shared =
        Array.to_list (Laminar.members lam beta)
        |> List.filter (fun i ->
               alloc.load.(beta).(i) > 0
               && List.exists
                    (fun alpha -> alpha <> beta && alloc.load.(alpha).(i) > 0)
                    (Laminar.ancestors lam beta))
      in
      List.length shared <= 1)
    (Laminar.bottom_up lam)

(** Lemma IV.1 as a checkable property: cumulative loads never exceed the
    horizon. *)
let lemma_iv1_holds lam alloc ~tmax =
  List.for_all
    (fun set ->
      Array.for_all (fun i -> alloc.tot_load.(set).(i) <= tmax) (Laminar.members lam set)
      |> fun ok ->
      ok
      &&
      (* loads are consistent sums along the chain *)
      Array.for_all
        (fun i ->
          let prev =
            match child_containing lam set i with
            | Some beta -> alloc.tot_load.(beta).(i)
            | None -> 0
          in
          alloc.tot_load.(set).(i) = prev + alloc.load.(set).(i))
        (Laminar.members lam set))
    (Laminar.bottom_up lam)

(* Rotate the ascending member list of a set to start from machine [l]. *)
let members_from lam set l =
  let ms = Array.to_list (Laminar.members lam set) in
  let rec split acc = function
    | [] -> (List.rev acc, [])
    | x :: rest when x = l -> (List.rev acc, x :: rest)
    | x :: rest -> split (x :: acc) rest
  in
  let before, after = split [] ms in
  after @ before

(** Algorithms 2 + 3, also returning the tape-order migration/preemption
    counts aggregated over all sets. *)
let schedule_stats inst assignment ~tmax =
  Hs_obs.Tracer.with_span ~cat:"sched" ~args:[ ("T", Hs_obs.Tracer.Int tmax) ] "sched.alg23"
  @@ fun () ->
  match allocate inst assignment ~tmax with
  | Error e -> Error e
  | Ok alloc ->
      let lam = Instance.laminar inst in
      let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
      if not (lemma_iv2_holds lam alloc) then err "hierarchical: Lemma IV.2 violated"
      else begin
        let n = Instance.njobs inst in
        let p j s = Ptime.value_exn (Instance.ptime inst ~job:j ~set:s) in
        (* t_end.(set).(machine) = wall-clock end (mod T) of that set's
           block on that machine, once scheduled. *)
        let nsets = Laminar.size lam in
        let m = Laminar.m lam in
        let t_end = Array.make_matrix nsets m 0 in
        let segments = ref [] in
        let stats = ref Tape.no_stats in
        let exception Fail of string in
        try
          List.iter
            (fun beta ->
              (* Line 4: the unique machine sharing load with an ancestor. *)
              let start_info =
                Array.to_list (Laminar.members lam beta)
                |> List.find_map (fun i ->
                       if alloc.load.(beta).(i) = 0 then None
                       else
                         let ancestors =
                           List.filter (fun a -> a <> beta) (Laminar.ancestors lam beta)
                         in
                         (* minimal strict superset with positive load on i *)
                         List.find_opt (fun a -> alloc.load.(a).(i) > 0) ancestors
                         |> Option.map (fun a -> (i, a)))
              in
              let t0, l =
                match start_info with
                | Some (i, alpha) -> (t_end.(alpha).(i), i)
                | None -> (
                    match Array.to_list (Laminar.members lam beta) with
                    | [] -> raise (Fail "empty set")
                    | i :: _ -> (0, i))
              in
              (* Lines 11–14: chain the blocks, remembering each end. *)
              let t = ref t0 in
              let blocks =
                List.filter_map
                  (fun k ->
                    let len = alloc.load.(beta).(k) in
                    if tmax > 0 then begin
                      let b = { Tape.machine = k; start = !t; len } in
                      t := (!t + len) mod tmax;
                      t_end.(beta).(k) <- !t;
                      if len > 0 then Some b else None
                    end
                    else None)
                  (members_from lam beta l)
              in
              let jobs =
                List.init n (fun j -> j)
                |> List.filter (fun j -> assignment.(j) = beta)
                |> List.map (fun j -> (j, p j beta))
              in
              let laid = Tape.lay ~horizon:tmax ~blocks ~jobs in
              stats := Tape.merge_stats !stats laid.Tape.stats;
              segments := laid.Tape.segments @ !segments)
            (Laminar.top_down lam);
          let sched = Schedule.coalesce { Schedule.horizon = tmax; segments = !segments } in
          Obs.record sched !stats;
          Hs_obs.Tracer.add_args
            [
              ("migrations", Hs_obs.Tracer.Int !stats.Tape.migrations);
              ("preemptions", Hs_obs.Tracer.Int !stats.Tape.preemptions);
            ];
          Ok (sched, !stats)
        with
        | Fail msg -> err "hierarchical: %s" msg
        | Invalid_argument msg -> err "hierarchical: %s" msg
      end

let schedule inst assignment ~tmax = Result.map fst (schedule_stats inst assignment ~tmax)
