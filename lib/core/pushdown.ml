(** Lemma V.1: pushing fractional weight down to the singletons.

    Given a feasible fractional solution of the (IP-3) relaxation on a
    singleton-closed laminar family, repeatedly rewrite the weight of
    every non-singleton set over its (disjoint, covering) maximal proper
    subsets, splitting proportionally to their slack:

      x'_{βj} = x_{βj} + slack(β) / Σ_i slack(β_i) · x_{ηj}.

    The lemma guarantees the rewritten solution is again feasible; after
    a top-down sweep only singleton sets carry weight, so the solution
    reads as a fractional unrelated-machines assignment — the bridge to
    the Lenstra–Shmoys–Tardos rounding in Theorem V.2. *)

open Hs_model
open Hs_laminar

(* Telemetry: Lemma V.1 rewrite counts (shared across field instances). *)
module Obs = struct
  let pushes = Hs_obs.Metrics.counter "pushdown.pushes"
  let sweeps = Hs_obs.Metrics.counter "pushdown.sweeps"
end

module Make (F : Hs_lp.Field.S) = struct
  (** [slack inst x ~tmax set] = |α|·T − Σ_j Σ_{β⊆α} p_{βj} x_{βj}. *)
  let slack inst (x : F.t array array) ~tmax set =
    let lam = Instance.laminar inst in
    let used = ref F.zero in
    List.iter
      (fun beta ->
        Array.iteri
          (fun j v ->
            if F.sign v <> 0 then
              let p = Ptime.value_exn (Instance.ptime inst ~job:j ~set:beta) in
              used := F.add !used (F.mul (F.of_int p) v))
          x.(beta))
      (Laminar.descendants lam set);
    F.sub (F.of_int (Laminar.card lam set * tmax)) !used

  (** One application of Lemma V.1 to set [eta] (in place). *)
  let push_one inst (x : F.t array array) ~tmax eta =
    let lam = Instance.laminar inst in
    let children = Laminar.children lam eta in
    let has_mass = Array.exists (fun v -> F.sign v > 0) x.(eta) in
    if has_mass then begin
      Hs_obs.Metrics.incr Obs.pushes;
      (* In a singleton-closed family the maximal proper subsets are
         pairwise disjoint and cover eta. *)
      let covered = List.fold_left (fun acc c -> acc + Laminar.card lam c) 0 children in
      if covered <> Laminar.card lam eta then
        Hs_error.raise_
          (Internal "Pushdown: children do not cover the set (family not closed)");
      let slacks = List.map (fun c -> (c, slack inst x ~tmax c)) children in
      let denom = List.fold_left (fun acc (_, s) -> F.add acc s) F.zero slacks in
      Array.iteri
        (fun j v ->
          if F.sign v > 0 then begin
            if F.sign denom > 0 then
              List.iter
                (fun (c, s) ->
                  x.(c).(j) <- F.add x.(c).(j) (F.div (F.mul s v) denom))
                slacks
            else begin
              (* Zero total slack forces p_{ηj}·x_{ηj} = 0 (inequality (5));
                 the weight is volume-free and may go to any child. *)
              match children with
              | c :: _ -> x.(c).(j) <- F.add x.(c).(j) v
              | [] ->
                  Hs_error.raise_ (Internal "Pushdown: non-singleton set without children")
            end;
            x.(eta).(j) <- F.zero
          end)
        x.(eta)
    end

  (** Full top-down sweep; the result has positive weight only on
      singleton sets.  The input array is not modified. *)
  let push_down inst ~tmax (x : F.t array array) =
    Hs_obs.Metrics.incr Obs.sweeps;
    Hs_obs.Tracer.with_span ~cat:"pushdown" ~args:[ ("T", Hs_obs.Tracer.Int tmax) ]
      "pushdown.sweep"
    @@ fun () ->
    let lam = Instance.laminar inst in
    let x = Array.map Array.copy x in
    List.iter
      (fun set -> if not (Laminar.is_singleton lam set) then push_one inst x ~tmax set)
      (Laminar.top_down lam);
    x

  (** Test hook: weight is confined to singletons. *)
  let singletons_only inst (x : F.t array array) =
    let lam = Instance.laminar inst in
    let ok = ref true in
    Array.iteri
      (fun s row ->
        if not (Laminar.is_singleton lam s) then
          Array.iter (fun v -> if F.sign v <> 0 then ok := false) row)
      x;
    !ok

  (** Test hook: the (IP-3) relaxation constraints hold for [x]. *)
  let feasible inst ~tmax (x : F.t array array) =
    let lam = Instance.laminar inst in
    let n = Instance.njobs inst in
    let ok = ref true in
    (* (2a): unit mass per job; weight only on R pairs; non-negativity. *)
    for j = 0 to n - 1 do
      let mass = ref F.zero in
      for s = 0 to Laminar.size lam - 1 do
        let v = x.(s).(j) in
        if F.sign v < 0 then ok := false;
        if F.sign v > 0 && not (Ptime.fits (Instance.ptime inst ~job:j ~set:s) ~tmax) then
          ok := false;
        mass := F.add !mass v
      done;
      if F.sign (F.sub !mass F.one) <> 0 then ok := false
    done;
    (* (3a): subtree capacity. *)
    List.iter
      (fun set -> if F.sign (slack inst x ~tmax set) < 0 then ok := false)
      (Laminar.bottom_up lam);
    !ok
end
