(** Theorem V.2: the polynomial-time 2-approximation for hierarchical
    scheduling, plus the Section II 8-approximation for general
    (non-laminar) families.

    Pipeline (laminar case):
    + close the family under singletons (processing time of the minimal
      original superset — the convention of Section V),
    + binary-search the minimal integer horizon [T*] at which the (IP-3)
      relaxation is feasible ([T* ≤ OPT]),
    + by Lemma V.1 ({!Pushdown}) the {e unrelated-machines} relaxation
      [I_u] is then feasible at [T*] as well, so re-solve that restricted
      LP to a {e basic} (vertex) solution — the rounding theorem needs a
      vertex, which the push-down transformation itself does not
      preserve,
    + round with Lenstra–Shmoys–Tardos ({!Lst_rounding}),
    + realise the integral assignment with Algorithms 2–3.

    The resulting makespan is at most [2·T* ≤ 2·OPT]. *)

open Hs_model

(* The branch-and-bound unit of this library, aliased before the local
   [Exact] field instance below shadows the name. *)
module Exact_bb = Exact

module Make (F : Hs_lp.Field.S) = struct
  module I = Ilp.Make (F)
  module R = Lst_rounding.Make (F)

  (** The unrelated-machines restriction [I_u] of a singleton-closed
      instance: keep only the singleton masks (Section V). *)
  let unrelated_restriction closed =
    let lam = Instance.laminar closed in
    let m = Hs_laminar.Laminar.m lam in
    let times =
      Array.init (Instance.njobs closed) (fun j ->
          Array.init m (fun i ->
              match Hs_laminar.Laminar.singleton lam i with
              | Some s -> Instance.ptime closed ~job:j ~set:s
              | None -> Ptime.Inf))
    in
    Instance.unrelated times

  type outcome = {
    instance : Instance.t;  (** the singleton-closed instance solved *)
    translate : int -> int option;
        (** closed set id → original set id ([None] for added singletons) *)
    assignment : Assignment.t;  (** over the closed instance *)
    t_lp : int;  (** minimal LP-feasible horizon — a lower bound on OPT *)
    makespan : int;  (** achieved integral makespan, ≤ 2·t_lp *)
    schedule : Schedule.t;
    rounding : R.stats;
  }

  (** The budget-aware pipeline.  Raises {!Hs_error.Error} on any typed
      failure (infeasibility, budget exhaustion, LP stall, broken
      invariant); [trip] is the fault-injection hook, fired on entry to
      each stage. *)
  let solve_x ?pricing ?pivots ?(on_stall = `Bland) ?warm ?iters
      ?(trip = fun (_ : Hs_error.stage) -> ()) inst : outcome =
    Hs_obs.Tracer.with_span ~cat:"pipeline"
      ~args:[ ("jobs", Hs_obs.Tracer.Int (Instance.njobs inst)) ]
      "pipeline.solve"
    @@ fun () ->
    let closed, translate = Instance.with_singletons inst in
    (* Only the binary-search probes share the warm store: they solve the
       same relaxation at drifting horizons, which is exactly what the
       basis hints survive.  The unrelated-machines re-solve below is a
       different LP and stays cold, so the pipeline's outcome is
       warm-independent (the probes' verdicts don't depend on their
       starting basis, and the discarded [_frac] is the only thing warm
       starting could change). *)
    match I.min_feasible_t_x ?pricing ?pivots ~on_stall ?warm ?iters ~trip closed with
    | None ->
        Hs_error.raise_
          (Infeasible
             { reason = "no feasible horizon (some job has no finite mask)"; certified = false })
    | Some (t_lp, _frac) -> (
        let iu = unrelated_restriction closed in
        match I.lp_feasible_x ?pricing ?pivots ~on_stall ~trip iu ~tmax:t_lp with
        | None ->
            (* Contradicts Lemma V.1: the hierarchical LP was feasible. *)
            Hs_error.raise_
              (Internal
                 (Printf.sprintf "Lemma V.1 feasibility transfer failed at T=%d" t_lp))
        | Some frac_u -> (
            trip Hs_error.Rounding;
            match R.round iu frac_u with
            | Error e -> Hs_error.raise_ (Internal ("rounding failed: " ^ e))
            | Ok (assignment_u, rounding) -> (
                (* Lift machines back onto the closed family's singletons. *)
                let lam_u = Instance.laminar iu in
                let lam_c = Instance.laminar closed in
                let assignment =
                  Array.map
                    (fun s ->
                      let machine = (Hs_laminar.Laminar.members lam_u s).(0) in
                      Option.get (Hs_laminar.Laminar.singleton lam_c machine))
                    assignment_u
                in
                let makespan = Assignment.min_makespan closed assignment in
                trip Hs_error.Sched;
                match Hierarchical.schedule closed assignment ~tmax:makespan with
                | Error e -> Hs_error.raise_ (Internal ("scheduler failed: " ^ e))
                | Ok schedule ->
                    Hs_obs.Tracer.add_args
                      [
                        ("t_lp", Hs_obs.Tracer.Int t_lp);
                        ("makespan", Hs_obs.Tracer.Int makespan);
                      ];
                    { instance = closed; translate; assignment; t_lp; makespan; schedule; rounding })))

  let solve_checked ?warm inst : (outcome, Hs_error.t) result =
    Hs_error.guard (fun () -> solve_x ?warm inst)

  let solve inst : (outcome, string) result =
    Result.map_error Hs_error.to_string (solve_checked inst)
end

module Exact = Make (Hs_lp.Field.Exact)
module Fast = Make (Hs_lp.Field.Float)

(** The Section II algorithm for arbitrary admissible families: reduce to
    unrelated machines (taking, for each machine, the cheapest admissible
    set containing it), 2-approximate the reduced instance, and lift the
    partitioned solution back via witness sets.  The reduced LP horizon
    lower-bounds the original preemptive optimum, and the paper's chain
    of inequalities bounds the overall factor by 8. *)
type general_outcome = {
  machine_assignment : int array;  (** job → machine *)
  set_assignment : int array;  (** job → index into the family, via witnesses *)
  makespan : int;  (** of the lifted (partitioned) schedule *)
  lower_bound : int;  (** LP preemptive lower bound of the reduced instance *)
}

let solve_general (g : General_instance.t) : (general_outcome, string) result =
  let module A = Make (Hs_lp.Field.Exact) in
  let iu = General_instance.to_unrelated g in
  match A.solve iu with
  | Error e -> Error e
  | Ok o ->
      let lam = Instance.laminar o.instance in
      let n = General_instance.njobs g in
      let machine_assignment =
        Array.init n (fun j -> (Hs_laminar.Laminar.members lam o.assignment.(j)).(0))
      in
      let set_assignment =
        Array.init n (fun j ->
            match General_instance.witness_set g ~job:j ~machine:machine_assignment.(j) with
            | Some k -> k
            | None -> -1)
      in
      Ok { machine_assignment; set_assignment; makespan = o.makespan; lower_bound = o.t_lp }

(** {1 Resilient entry point}

    [solve_robust] wraps the exact branch and bound and the Theorem V.2
    pipeline behind deterministic resource budgets with graceful
    degradation: exact (when a node budget is given) → LP + LST rounding
    under Dantzig pricing → the same under Bland's rule after a pricing
    stall.  Every schedule that leaves this function has been re-checked
    by {!Hs_model.Schedule.validate} and carries the provenance of the
    path that produced it. *)

type provenance =
  | Exact_optimal  (** proven optimum from branch and bound *)
  | Lp_approx of { pricing : [ `Dantzig | `Bland ]; restarted : bool }
      (** the 2-approximation; [restarted] after a fallback *)

let provenance_to_string = function
  | Exact_optimal -> "exact (branch and bound, proven optimal)"
  | Lp_approx { pricing; restarted } ->
      Printf.sprintf "lp-rounding 2-approximation (%s pricing%s)"
        (match pricing with `Dantzig -> "dantzig" | `Bland -> "bland")
        (if restarted then ", after fallback" else "")

type robust_outcome = {
  r_instance : Instance.t;
      (** the instance the assignment refers to: the original one on the
          exact path, its singleton closure on the LP path *)
  r_assignment : Assignment.t;
  r_makespan : int;
  r_lower_bound : int;  (** proven optimum, or the LP horizon [T*] *)
  r_schedule : Schedule.t;
  r_provenance : provenance;
  r_fallbacks : Hs_error.t list;
      (** degradations taken before the successful path, oldest first *)
  r_consumed : Budget.t;
      (** resources actually spent by the metered stages: [Some] only for
          the dimensions the caller budgeted (branch-and-bound nodes are
          reported by {!Exact.stats}, not metered here) *)
}

let solve_robust ?(budget = Budget.unlimited) ?(on_exhausted = `Fallback) ?inject inst :
    (robust_outcome, Hs_error.t) result =
  let meter = Budget.meter budget in
  (* Fault injection: the first time the pipeline enters [inject]'s
     stage, behave exactly as if the budget ran out there. *)
  let injected = ref inject in
  let trip stage =
    match !injected with
    | Some s when s = stage ->
        injected := None;
        Hs_error.raise_ (Budget_exhausted { stage; detail = "injected fault" })
    | _ -> ()
  in
  let fallbacks = ref [] in
  let certify ~provenance ~lower_bound ~instance ~assignment ~makespan ~schedule =
    match Schedule.validate instance assignment schedule with
    | Error e -> Hs_error.raise_ (Internal ("re-certification failed: " ^ e))
    | Ok () ->
        {
          r_instance = instance;
          r_assignment = assignment;
          r_makespan = makespan;
          r_lower_bound = lower_bound;
          r_schedule = schedule;
          r_provenance = provenance;
          r_fallbacks = List.rev !fallbacks;
          r_consumed = Budget.consumed meter;
        }
  in
  let exact_attempt () =
    trip Hs_error.Bb;
    match Exact_bb.optimal_checked ~budget inst with
    | Error e -> Hs_error.raise_ e
    | Ok (assignment, span, _stats) -> (
        trip Hs_error.Sched;
        match Hierarchical.schedule inst assignment ~tmax:span with
        | Error e -> Hs_error.raise_ (Internal ("scheduler failed on exact assignment: " ^ e))
        | Ok schedule ->
            certify ~provenance:Exact_optimal ~lower_bound:span ~instance:inst ~assignment
              ~makespan:span ~schedule)
  in
  let lp_attempt pricing ~restarted () =
    let spricing =
      match pricing with
      | `Dantzig -> Exact.I.Solver.Dantzig
      | `Bland -> Exact.I.Solver.Bland
    in
    (* Under Dantzig, surface a degeneracy stall as a typed error so the
       chain restarts with Bland's rule; Bland needs no guard. *)
    let on_stall = match pricing with `Dantzig -> `Fail | `Bland -> `Bland in
    let o =
      Exact.solve_x ~pricing:spricing ?pivots:meter.Budget.pivots ~on_stall
        ?iters:meter.Budget.iters ~trip inst
    in
    certify
      ~provenance:(Lp_approx { pricing; restarted })
      ~lower_bound:o.Exact.t_lp ~instance:o.Exact.instance ~assignment:o.Exact.assignment
      ~makespan:o.Exact.makespan ~schedule:o.Exact.schedule
  in
  let recoverable = function
    | Hs_error.Lp_stall _ -> true
    | Hs_error.Budget_exhausted _ -> on_exhausted = `Fallback
    | _ -> false
  in
  let rec run = function
    | [] -> Error (Hs_error.Internal "no solver attempts configured")
    | [ attempt ] -> ( try Ok (attempt ()) with Hs_error.Error e -> Error e)
    | attempt :: rest -> (
        try Ok (attempt ())
        with Hs_error.Error e ->
          if recoverable e then begin
            fallbacks := e :: !fallbacks;
            run rest
          end
          else Error e)
  in
  let result =
    run
      ((match meter.Budget.nodes with Some _ -> [ exact_attempt ] | None -> [])
      @ [ lp_attempt `Dantzig ~restarted:false; lp_attempt `Bland ~restarted:true ])
  in
  Budget.record_metrics budget meter;
  result
