(** Deterministic resource budgets for the solver pipeline.

    Caps the three unbounded loops — simplex pivots, branch-and-bound
    nodes, binary-search iterations.  [None] means unlimited.  Budgets
    are plain counters, so exhaustion is reproducible. *)

type t = {
  lp_pivots : int option;  (** total simplex pivots across all LP solves *)
  bb_nodes : int option;  (** branch-and-bound nodes expanded *)
  search_iters : int option;  (** binary-search probes over the horizon *)
}

val unlimited : t
val v : ?lp_pivots:int -> ?bb_nodes:int -> ?search_iters:int -> unit -> t

val of_units : int -> t
(** The CLI's single [--budget K] knob: [K] pivots and [K] nodes; the
    (logarithmic) binary search stays uncapped. *)

val is_unlimited : t -> bool

(** A live meter instantiates a budget's counters for one solve: the
    pivot allowance is shared (mutably) by every LP call of the run. *)
type meter = {
  pivots : Hs_lp.Simplex.budget option;
  iters : int ref option;
  nodes : int option;
}

val meter : t -> meter
val pp : Format.formatter -> t -> unit
