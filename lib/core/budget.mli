(** Deterministic resource budgets for the solver pipeline.

    Caps the three unbounded loops — simplex pivots, branch-and-bound
    nodes, binary-search iterations.  [None] means unlimited.  Budgets
    are plain counters, so exhaustion is reproducible. *)

type t = {
  lp_pivots : int option;  (** total simplex pivots across all LP solves *)
  bb_nodes : int option;  (** branch-and-bound nodes expanded *)
  search_iters : int option;  (** binary-search probes over the horizon *)
}

val unlimited : t
val v : ?lp_pivots:int -> ?bb_nodes:int -> ?search_iters:int -> unit -> t

val of_units : int -> t
(** The CLI's single [--budget K] knob: [K] pivots and [K] nodes; the
    (logarithmic) binary search stays uncapped. *)

val is_unlimited : t -> bool

val of_deadline_ms : units_per_ms:int -> int -> t
(** Deterministic deadline-to-budget exchange: a client deadline of
    [ms] milliseconds buys [ms * units_per_ms] budget units
    ({!of_units}; saturating, clamped at 0).  A wall clock cannot be
    consulted mid-solve without losing reproducibility, so the service
    enforces deadlines through this fixed rate — the same deadline
    always exhausts at the same pivot/node.  Raises [Invalid_argument]
    when [units_per_ms < 1]. *)

val meet : t -> t -> t
(** Pointwise minimum of two budgets ([None] = unlimited): the tighter
    cap wins in each dimension. *)

type counted = { mutable left : int; total : int }
(** A decrementing allowance that remembers its initial size, so
    consumption ("used X of Y") is always reportable. *)

(** A live meter instantiates a budget's counters for one solve: the
    pivot allowance is shared (mutably) by every LP call of the run. *)
type meter = {
  pivots : Hs_lp.Simplex.budget option;
  iters : counted option;
  nodes : int option;
}

val meter : t -> meter

val consumed : meter -> t
(** How much of each {e metered} allowance has been spent so far:
    [Some spent] for the dimensions the budget capped, [None] for
    unlimited ones.  Branch-and-bound node consumption is reported by
    the solver itself ({!Exact.stats}), not the meter. *)

val record_metrics : t -> meter -> unit
(** Publish the meter to the {!Hs_obs.Metrics} registry as
    [budget.<resource>.limit] / [budget.<resource>.consumed] gauges
    (metered dimensions only). *)

val pp : Format.formatter -> t -> unit
