(** Theorem V.2: the polynomial-time 2-approximation for hierarchical
    scheduling, plus the Section II 8-approximation for general
    (non-laminar) families.

    Pipeline: singleton closure → binary search of the minimal
    LP-feasible horizon [T*] (a certified lower bound on OPT) → re-solve
    the unrelated-machines restriction at [T*] to a basic solution
    (feasible by Lemma V.1) → Lenstra–Shmoys–Tardos rounding →
    Algorithms 2–3.  The achieved makespan is at most [2·T* ≤ 2·OPT]. *)

open Hs_model

module Make (F : Hs_lp.Field.S) : sig
  module I : sig
    type frac = F.t array array

    type warm_store
    (** Warm-start hint bag (see {!Ilp.Make.warm_store}): threading one
        store through successive solves makes each LP probe start from
        the previous optimal basis. *)

    val warm_store : unit -> warm_store
    val warm_saved : warm_store -> int
    val lp_feasible : Instance.t -> tmax:int -> frac option
    val t_bounds : Instance.t -> (int * int) option
    val min_feasible_t : Instance.t -> (int * frac) option
  end

  module R : sig
    type stats = { fractional_jobs : int; matched : int }
  end

  val unrelated_restriction : Instance.t -> Instance.t
  (** The instance [I_u] of Section V: only the singleton masks of a
      singleton-closed instance. *)

  type outcome = {
    instance : Instance.t;  (** the singleton-closed instance solved *)
    translate : int -> int option;
        (** closed set id → original set id ([None] for added singletons) *)
    assignment : Assignment.t;  (** over the closed instance *)
    t_lp : int;  (** minimal LP-feasible horizon — lower bound on OPT *)
    makespan : int;  (** achieved integral makespan, ≤ 2·t_lp *)
    schedule : Schedule.t;
    rounding : R.stats;
  }

  val solve : Instance.t -> (outcome, string) result

  val solve_checked :
    ?warm:I.warm_store -> Instance.t -> (outcome, Hs_error.t) result
  (** Same pipeline with the typed error preserved, so callers can
      distinguish infeasibility from internal failures.  [warm] threads
      a basis store through the binary-search probes (used by the online
      replayer, where successive events solve near-identical LPs); the
      outcome is identical with or without it — only pivot counts
      change.  Omitted, every solve is cold. *)
end

module Exact : module type of Make (Hs_lp.Field.Exact)
(** Certified pipeline: every bound is exact. *)

module Fast : module type of Make (Hs_lp.Field.Float)
(** Floating-point LP path — faster, used only for benchmarks. *)

(** {1 General (non-laminar) masks — §II} *)

type general_outcome = {
  machine_assignment : int array;  (** job → machine *)
  set_assignment : int array;  (** job → family index, via witness sets *)
  makespan : int;  (** of the lifted partitioned schedule *)
  lower_bound : int;  (** LP preemptive lower bound of the reduced instance *)
}

val solve_general : General_instance.t -> (general_outcome, string) result
(** The reduction-based algorithm whose makespan is within a factor 8 of
    the optimum (via the preemptive/non-preemptive chain of §II). *)

(** {1 Resilient entry point}

    {!solve_robust} runs the solvers behind deterministic resource
    budgets with graceful degradation: exact branch and bound (when a
    node budget is configured) → LP + LST rounding under Dantzig pricing
    → the same under Bland's rule after a pricing stall.  Every returned
    schedule has been re-certified by {!Hs_model.Schedule.validate} and
    is tagged with the provenance of the path that produced it. *)

type provenance =
  | Exact_optimal  (** proven optimum from branch and bound *)
  | Lp_approx of { pricing : [ `Dantzig | `Bland ]; restarted : bool }
      (** the 2-approximation ([makespan ≤ 2·T*]); [restarted] after a
          fallback *)

val provenance_to_string : provenance -> string

type robust_outcome = {
  r_instance : Instance.t;
      (** the instance the assignment refers to: the original one on the
          exact path, its singleton closure on the LP path *)
  r_assignment : Assignment.t;
  r_makespan : int;
  r_lower_bound : int;  (** proven optimum, or the LP horizon [T*] *)
  r_schedule : Schedule.t;
  r_provenance : provenance;
  r_fallbacks : Hs_error.t list;
      (** degradations taken before the successful path, oldest first *)
  r_consumed : Budget.t;
      (** resources actually spent by the metered stages: [Some] only for
          the dimensions the caller budgeted (branch-and-bound nodes are
          reported by {!Exact.stats}, not metered here) *)
}

val solve_robust :
  ?budget:Budget.t ->
  ?on_exhausted:[ `Fail | `Fallback ] ->
  ?inject:Hs_error.stage ->
  Instance.t ->
  (robust_outcome, Hs_error.t) result
(** Solve under a resource budget.  With [`Fallback] (the default) a
    budget exhaustion degrades to the next path in the chain; with
    [`Fail] it surfaces as [Error (Budget_exhausted _)].  A Dantzig
    pricing stall always restarts under Bland's rule.  [inject] is the
    fault-injection hook of the test harness: the first time the
    pipeline enters that stage it behaves exactly as if its budget ran
    out there. *)
