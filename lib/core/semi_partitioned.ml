(** Algorithm 1: the scheduler for semi-partitioned assignments (§III).

    Given a feasible solution [(x, T)] of (IP-1) — here an integral
    {!Hs_model.Assignment.t} over the two-level family [{M} ∪ singletons]
    — it wraps the global volume around the machines, then packs each
    machine's local jobs into its remaining free time.  Theorem III.1:
    the result is a valid schedule in [[0, T]]. *)

open Hs_model
open Hs_laminar

(* Per-machine choice order of line 4 ("an empty machine"): ascending. *)

(** Returns the schedule together with the tape-order migration and
    preemption counts that Proposition III.2 bounds by [m-1] and
    [2m-2]. *)
let schedule_stats inst assignment ~tmax =
  Hs_obs.Tracer.with_span ~cat:"sched" ~args:[ ("T", Hs_obs.Tracer.Int tmax) ] "sched.alg1"
  @@ fun () ->
  let lam = Instance.laminar inst in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if not (Laminar.is_semi_partitioned lam) then
    err "semi_partitioned: family is not {M} + singletons"
  else if not (Assignment.well_formed inst assignment) then
    err "semi_partitioned: ill-formed assignment"
  else if Laminar.m lam = 1 then
    (* Degenerate single-machine case: global = local; the general
       hierarchical scheduler handles it directly (one machine cannot
       migrate or wrap, so the stats are zero). *)
    Result.map (fun s -> (s, Tape.no_stats)) (Hierarchical.schedule inst assignment ~tmax)
  else begin
    let m = Laminar.m lam in
    let full = Option.get (Laminar.full_set lam) in
    let singleton i = Option.get (Laminar.singleton lam i) in
    let p j s = Ptime.value_exn (Instance.ptime inst ~job:j ~set:s) in
    let n = Instance.njobs inst in
    let global_jobs =
      List.init n (fun j -> j) |> List.filter (fun j -> assignment.(j) = full)
    in
    let local_jobs i =
      List.init n (fun j -> j) |> List.filter (fun j -> assignment.(j) = singleton i)
    in
    let local_load = Array.init m (fun i -> List.fold_left (fun a j -> a + p j (singleton i)) 0 (local_jobs i)) in
    let oversized =
      List.exists (fun j -> p j assignment.(j) > tmax) (List.init n (fun j -> j))
    in
    if oversized then err "semi_partitioned: some job exceeds the horizon (1d)"
    else if Array.exists (fun l -> l > tmax) local_load then
      err "semi_partitioned: some machine's local load exceeds T (1c)"
    else begin
      (* Lines 1–8: carve the global volume into per-machine blocks. *)
      let v = ref (List.fold_left (fun a j -> a + p j full) 0 global_jobs) in
      let t = ref 0 in
      let blocks = ref [] in
      for i = 0 to m - 1 do
        if !v > 0 then begin
          let delta = Stdlib.min !v (tmax - local_load.(i)) in
          if delta > 0 then begin
            blocks := { Tape.machine = i; start = !t; len = delta } :: !blocks;
            t := (!t + delta) mod tmax;
            v := !v - delta
          end
        end
      done;
      if !v > 0 then err "semi_partitioned: global volume exceeds capacity (1b)"
      else begin
        let blocks = List.rev !blocks in
        let global_laid =
          Tape.lay ~horizon:tmax ~blocks
            ~jobs:(List.map (fun j -> (j, p j full)) global_jobs)
        in
        (* Line 9–10: local jobs fill each machine's free time. *)
        let block_of i = List.find_opt (fun (b : Tape.block) -> b.machine = i) blocks in
        let local_laid =
          List.init m (fun i ->
              let free =
                match block_of i with
                | None -> [ { Tape.machine = i; start = 0; len = tmax } ]
                | Some b -> Tape.complement ~horizon:tmax ~machine:i ~start:b.start ~len:b.len
              in
              Tape.lay ~horizon:tmax ~blocks:free
                ~jobs:(List.map (fun j -> (j, p j (singleton i))) (local_jobs i)))
        in
        let segments =
          global_laid.Tape.segments
          @ List.concat_map (fun (l : Tape.laid) -> l.Tape.segments) local_laid
        in
        let stats =
          List.fold_left
            (fun acc (l : Tape.laid) -> Tape.merge_stats acc l.Tape.stats)
            global_laid.Tape.stats local_laid
        in
        let sched = Schedule.coalesce { Schedule.horizon = tmax; segments } in
        (* The m = 1 branch above records through [Hierarchical.schedule];
           only the genuine Algorithm 1 path reports here. *)
        Hierarchical.Obs.record sched stats;
        Hs_obs.Tracer.add_args
          [
            ("migrations", Hs_obs.Tracer.Int stats.Tape.migrations);
            ("preemptions", Hs_obs.Tracer.Int stats.Tape.preemptions);
          ];
        Ok (sched, stats)
      end
    end
  end

(** Algorithm 1 proper; see {!schedule_stats} for the event counts. *)
let schedule inst assignment ~tmax =
  Result.map fst (schedule_stats inst assignment ~tmax)
