(** The (IP-1)/(IP-2)/(IP-3) formulations and their LP relaxations (§III–V).

    (IP-3) is the decision form: for a fixed horizon [T], variables
    [x_{αj}] exist only for pairs in [R = {(α,j) : p_{αj} ≤ T}], each job
    picks one mask (3·assignment), and every set's subtree volume fits
    its aggregate capacity (3a).  Functorised over the coefficient field:
    {!Hs_lp.Field.Exact} certifies answers, {!Hs_lp.Field.Float} trades
    certification for speed. *)

open Hs_model

module Make (F : Hs_lp.Field.S) : sig
  module Solver : module type of Hs_lp.Simplex.Make (F)

  type frac = F.t array array
  (** [x.(set).(job)] — a fractional solution of the (IP-3) relaxation. *)

  val restricted : Instance.t -> tmax:int -> bool array array
  (** The pair set [R]: [r.(set).(job)] iff [p ≤ tmax]. *)

  val relaxation :
    Instance.t -> tmax:int -> (F.t Hs_lp.Lp_problem.t * int array array) option
  (** The LP relaxation plus the [(set, job) → variable] numbering;
      [None] when some job has an empty row of [R]. *)

  val lp_feasible : Instance.t -> tmax:int -> frac option
  (** A {e basic} fractional solution at horizon [tmax], or [None]. *)

  type warm_store
  (** A mutable bag of warm-start hints: the optimal basis of the last
      feasible LP solve, keyed semantically ([(set, job)] pairs and
      constraint identities rather than raw column numbers) so it stays
      meaningful across horizons and across events of a replay.  Sharing
      one store across solves makes each solve start from the previous
      optimum; hints that no longer apply are repaired or rejected by
      the solver, so results never depend on the store's contents. *)

  val warm_store : unit -> warm_store
  (** A fresh, empty store (first solve through it runs cold). *)

  val warm_saved : warm_store -> int
  (** Number of basis entries currently remembered (diagnostics). *)

  val lp_feasible_x :
    ?pricing:Solver.pricing ->
    ?pivots:Hs_lp.Simplex.budget ->
    ?on_stall:[ `Bland | `Fail ] ->
    ?warm:warm_store ->
    ?trip:(Hs_error.stage -> unit) ->
    Instance.t ->
    tmax:int ->
    frac option
  (** Budget-aware {!lp_feasible}: raises {!Hs_error.Error} with
      [Budget_exhausted] when the shared pivot allowance runs out, or
      [Lp_stall] under [~on_stall:`Fail].  [trip] is the fault-injection
      hook, fired on entry with {!Hs_error.Lp}.  [warm] warm-starts the
      solve from the store and saves the resulting basis back into it;
      omitted, the solve is cold (the historical behaviour, and
      byte-identical to it). *)

  val t_bounds : Instance.t -> (int * int) option
  (** Certified search bounds for the minimal feasible horizon
      [(max_j min_α p, Σ_j min_α p)]; [None] when some job has no finite
      mask. *)

  val min_feasible_t : Instance.t -> (int * frac) option
  (** Binary search of Section V: the minimal integer horizon whose LP
      relaxation is feasible (a lower bound on the integral optimum),
      with a basic solution at that horizon. *)

  val min_feasible_t_x :
    ?pricing:Solver.pricing ->
    ?pivots:Hs_lp.Simplex.budget ->
    ?on_stall:[ `Bland | `Fail ] ->
    ?warm:warm_store ->
    ?iters:Budget.counted ->
    ?trip:(Hs_error.stage -> unit) ->
    Instance.t ->
    (int * frac) option
  (** Budget-aware {!min_feasible_t}: every probe charges one iteration
      from [iters] and fires [trip] with {!Hs_error.Search} before
      delegating to {!lp_feasible_x} with the shared pivot budget (and
      [warm] store, so successive probes of the search warm-start from
      each other).  Raises {!Hs_error.Error} on exhaustion or stall. *)

  val certified_infeasible : Instance.t -> tmax:int -> bool
  (** [true] iff the relaxation at [tmax] is infeasible {e and} the
      infeasibility is certified: either a job has no admissible mask, or
      the simplex's Farkas witness passes independent verification.
      Certifies the lower side of the binary search (meaningful with
      {!Hs_lp.Field.Exact}). *)
end

val integral_feasible : Instance.t -> Assignment.t -> tmax:int -> bool
(** (IP-2) feasibility of an integral assignment; field-independent. *)
