(** Deterministic resource budgets for the solver pipeline.

    A budget caps the three unbounded loops of the pipeline — simplex
    pivots, branch-and-bound nodes, and binary-search iterations — so a
    pathological instance degrades or fails in bounded time instead of
    wedging the process.  Budgets are plain counters, so every run is
    reproducible: the same instance with the same budget exhausts at the
    same point. *)

type t = {
  lp_pivots : int option;  (** total simplex pivots across all LP solves *)
  bb_nodes : int option;  (** branch-and-bound nodes expanded *)
  search_iters : int option;  (** binary-search probes over the horizon *)
}

let unlimited = { lp_pivots = None; bb_nodes = None; search_iters = None }

let v ?lp_pivots ?bb_nodes ?search_iters () = { lp_pivots; bb_nodes; search_iters }

(* The CLI's single --budget knob: K units buy K pivots and K nodes;
   the binary search is already logarithmic so it stays uncapped. *)
let of_units k =
  let k = Stdlib.max 0 k in
  { lp_pivots = Some k; bb_nodes = Some k; search_iters = None }

let is_unlimited b = b.lp_pivots = None && b.bb_nodes = None && b.search_iters = None

(* A wall-clock deadline cannot be enforced deterministically, so the
   service converts it into budget units at a fixed exchange rate: the
   same deadline always buys the same number of pivots and nodes, and a
   deadline-capped solve exhausts at the same point on every run.
   Multiplication saturates instead of wrapping for huge deadlines. *)
let of_deadline_ms ~units_per_ms ms =
  if units_per_ms < 1 then invalid_arg "Budget.of_deadline_ms: units_per_ms must be >= 1";
  let ms = Stdlib.max 0 ms in
  let units =
    if ms > max_int / units_per_ms then max_int else ms * units_per_ms
  in
  of_units units

(* Pointwise minimum: the tighter of two caps in each dimension, [None]
   acting as infinity.  Used to combine a per-request budget with a
   deadline-derived one. *)
let meet a b =
  let dim x y =
    match (x, y) with
    | None, c | c, None -> c
    | Some p, Some q -> Some (Stdlib.min p q)
  in
  {
    lp_pivots = dim a.lp_pivots b.lp_pivots;
    bb_nodes = dim a.bb_nodes b.bb_nodes;
    search_iters = dim a.search_iters b.search_iters;
  }

type counted = { mutable left : int; total : int }

type meter = {
  pivots : Hs_lp.Simplex.budget option;
      (** shared mutable pivot allowance, threaded into every LP solve *)
  iters : counted option;  (** remaining binary-search probes *)
  nodes : int option;  (** node limit handed to branch and bound *)
}

let meter b =
  {
    pivots = Option.map Hs_lp.Simplex.budget b.lp_pivots;
    iters = Option.map (fun k -> { left = k; total = k }) b.search_iters;
    nodes = b.bb_nodes;
  }

(* Spent-so-far view of a live meter.  Node consumption lives in the
   branch-and-bound stats (the meter only hands the limit over), so it
   is reported as [None] here. *)
let consumed m =
  {
    lp_pivots = Option.map Hs_lp.Simplex.consumed m.pivots;
    bb_nodes = None;
    search_iters = Option.map (fun c -> c.total - c.left) m.iters;
  }

let record_metrics b m =
  let publish resource ~limit ~used =
    match (limit, used) with
    | Some limit, Some used ->
        Hs_obs.Metrics.set (Hs_obs.Metrics.gauge ("budget." ^ resource ^ ".limit")) limit;
        Hs_obs.Metrics.set (Hs_obs.Metrics.gauge ("budget." ^ resource ^ ".consumed")) used
    | _ -> ()
  in
  let c = consumed m in
  publish "pivots" ~limit:b.lp_pivots ~used:c.lp_pivots;
  publish "iters" ~limit:b.search_iters ~used:c.search_iters

let pp fmt b =
  let f name = function None -> name ^ "=∞" | Some k -> Printf.sprintf "%s=%d" name k in
  Format.fprintf fmt "{%s %s %s}" (f "pivots" b.lp_pivots) (f "nodes" b.bb_nodes)
    (f "iters" b.search_iters)
