(** Typed errors for the solver pipeline.

    The pipeline reports failures as values of {!t} instead of ad-hoc
    [failwith] strings: callers branch on the kind of failure (retry on
    a stall, degrade on budget exhaustion, reject on a parse error) and
    each kind carries a stable CLI exit code ({!exit_code}). *)

type stage =
  | Parse  (** reading an instance from text *)
  | Validate  (** laminarity / monotonicity validation *)
  | Search  (** the binary search over LP-feasible horizons *)
  | Lp  (** a simplex solve *)
  | Rounding  (** LST or iterative rounding *)
  | Bb  (** branch-and-bound node expansion *)
  | Sched  (** realising the assignment as a schedule *)

type t =
  | Parse_error of string  (** malformed instance text *)
  | Invalid_instance of string  (** well-formed text, invalid model *)
  | Lp_stall of { pricing : string }
      (** Dantzig pricing hit the degenerate-pivot threshold under
          [~on_stall:`Fail]; restarting under Bland's rule terminates *)
  | Budget_exhausted of { stage : stage; detail : string }
      (** a deterministic resource budget ran out at [stage] *)
  | Infeasible of { reason : string; certified : bool }
      (** the instance admits no schedule; [certified] when backed by a
          verified Farkas witness *)
  | Verification of { invariant : string; witness : string }
      (** an independent certificate check ([lib/check]) rejected a
          produced or cached artifact; [invariant] names the first
          violated paper condition, [witness] pinpoints it *)
  | Overloaded of { retry_after_ms : int }
      (** the service admission queue is full; the request was shed, not
          queued — retry after the (deterministic) hinted delay *)
  | Deadline_exceeded of { deadline_ms : int; detail : string }
      (** a per-request deadline expired before a result could be
          produced (in the admission queue, or as a deadline-derived
          budget exhausted mid-solve) *)
  | Unavailable of string
      (** the service endpoint is absent or refusing connections — no
          daemon at the socket, connection refused, peer vanished *)
  | Internal of string  (** an invariant the paper guarantees was broken *)

exception Error of t
(** Internal control flow of the pipeline; public entry points catch it
    and return [result] values ({!guard}). *)

val raise_ : t -> 'a

val stage_name : stage -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val exit_code : t -> int
(** CLI contract: [2] unusable input (parse / validation), [3]
    infeasible, [4] budget exhausted, [5] overloaded (shed by admission
    control), [6] deadline exceeded, [7] service unavailable, [1]
    everything else. *)

val guard : (unit -> 'a) -> ('a, t) result
(** Run a pipeline fragment, capturing a raised {!Error}. *)
