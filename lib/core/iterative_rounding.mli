(** Generic iterative rounding for assignment + packing LPs (Section VI).

    The engine behind both memory extensions: re-solve the residual LP to
    a vertex (exact arithmetic), freeze integral variables, and otherwise
    drop one relaxable packing row.  Theorem VI.1 uses the support-size
    rule; Lemma VI.2 the normalised-weight rule, which bounds the final
    violation of a row dropped at weight [≤ ρ·b] by [(1+ρ)·b] while the
    assignment constraints hold exactly. *)

module Q = Hs_numeric.Q

type var = {
  job : int;
  opt : int;  (** caller-side option identifier *)
  col : (int * Q.t) list;  (** sparse packing coefficients (row, a ≥ 0) *)
}

type problem = {
  njobs : int;
  vars : var list;
  bounds : Q.t array;  (** b_l > 0 *)
  names : string array;  (** one label per packing row *)
}

type policy =
  | Support_at_most of int
      (** drop a row whose fractional support has ≤ k variables *)
  | Weight_at_most of Q.t
      (** drop a row l with Σ_{support} a_lq ≤ ρ·b_l (Lemma VI.2) *)

type outcome = {
  choice : int array;  (** job → chosen option id *)
  usage : Q.t array;  (** final left-hand sides a_l·z̄ *)
  dropped : int list;  (** rows dropped during rounding *)
  rounds : int;
  fallback_drops : int;
      (** drops that did not satisfy the policy; positive values flag
          that the structural guarantee failed (expected 0) *)
}

val solve_checked :
  ?pivots:Hs_lp.Simplex.budget ->
  ?fail_on_stall:bool ->
  problem ->
  policy ->
  (outcome, Hs_error.t) result
(** Typed entry point.  [pivots] meters every residual LP re-solve
    against a shared pivot allowance (exhaustion yields
    [Budget_exhausted {stage = Rounding; _}]); [fail_on_stall] turns a
    Dantzig degeneracy stall into [Lp_stall] instead of the silent
    Bland fallback.  Fails when the initial LP is infeasible, a job runs
    out of options, or a bound is non-positive. *)

val solve :
  ?pivots:Hs_lp.Simplex.budget -> problem -> policy -> (outcome, string) result
(** {!solve_checked} with errors rendered as strings. *)
