(** Domain-local metrics registry; see the interface for conventions.

    Names are interned {e globally} (a mutex-protected table mapping each
    metric name to a small integer id), but every value cell lives in
    {e domain-local} storage: an increment is a [Domain.DLS.get] plus an
    integer store, with no cross-domain contention and no locks on the
    hot path.  A worker domain therefore accumulates into its own arrays;
    {!merge} folds a worker's {!snapshot} back into the calling domain's
    registry (counters and histograms summed, gauges upper-bounded), which
    is what makes a parallel sweep's final snapshot byte-identical to the
    sequential one. *)

type counter = int (* interned id *)
type gauge = int
type histogram = int

(* ---- global interning (mutex-protected, cold path only) --------------- *)

let lock = Mutex.create ()

type names = { ids : (string, int) Hashtbl.t; mutable count : int }

let ctr_names = { ids = Hashtbl.create 32; count = 0 }
let gauge_names = { ids = Hashtbl.create 16; count = 0 }
let hist_names = { ids = Hashtbl.create 8; count = 0 }

(* Bucket layout per histogram id, fixed at first registration. *)
let hist_buckets : (int, int list) Hashtbl.t = Hashtbl.create 8

let intern tbl name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt tbl.ids name with
      | Some id -> id
      | None ->
          let id = tbl.count in
          tbl.count <- id + 1;
          Hashtbl.add tbl.ids name id;
          id)

let bindings tbl = Mutex.protect lock (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl.ids [])

(* ---- domain-local cells ----------------------------------------------- *)

type hcell = {
  hc_buckets : int list;
  hc_counts : int array; (* length = #buckets + 1, last = overflow *)
  mutable hc_sum : int;
  mutable hc_obs : int;
}

type local = {
  mutable lc : int array;
  mutable lg : int array;
  mutable lh : hcell option array;
}

let dls : local Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { lc = [||]; lg = [||]; lh = [||] })

let local () = Domain.DLS.get dls

let grown len id = Stdlib.max 8 (Stdlib.max (id + 1) (2 * len))

let ensure_c l id =
  let len = Array.length l.lc in
  if id >= len then begin
    let a = Array.make (grown len id) 0 in
    Array.blit l.lc 0 a 0 len;
    l.lc <- a
  end

let ensure_g l id =
  let len = Array.length l.lg in
  if id >= len then begin
    let a = Array.make (grown len id) 0 in
    Array.blit l.lg 0 a 0 len;
    l.lg <- a
  end

let ensure_h l id =
  let len = Array.length l.lh in
  if id >= len then begin
    let a = Array.make (grown len id) None in
    Array.blit l.lh 0 a 0 len;
    l.lh <- a
  end

(* ---- counters --------------------------------------------------------- *)

let counter name = intern ctr_names name

let incr c =
  let l = local () in
  ensure_c l c;
  l.lc.(c) <- l.lc.(c) + 1

let add c by =
  let l = local () in
  ensure_c l c;
  l.lc.(c) <- l.lc.(c) + by

let value c =
  let l = local () in
  if c < Array.length l.lc then l.lc.(c) else 0

(* ---- gauges ----------------------------------------------------------- *)

let gauge name = intern gauge_names name

let set g v =
  let l = local () in
  ensure_g l g;
  l.lg.(g) <- v

let gauge_value g =
  let l = local () in
  if g < Array.length l.lg then l.lg.(g) else 0

(* ---- histograms ------------------------------------------------------- *)

let default_buckets = [ 1; 10; 100; 1_000; 10_000; 100_000; 1_000_000 ]
let ms_buckets = [ 1; 2; 5; 10; 25; 50; 100; 250; 500; 1_000; 2_500; 5_000; 10_000 ]

let histogram ?(buckets = default_buckets) name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt hist_names.ids name with
      | Some id -> id
      | None ->
          let id = hist_names.count in
          hist_names.count <- id + 1;
          Hashtbl.add hist_names.ids name id;
          Hashtbl.add hist_buckets id (List.sort_uniq compare buckets);
          id)

let buckets_of id = Mutex.protect lock (fun () -> Hashtbl.find hist_buckets id)

let hcell l id =
  ensure_h l id;
  match l.lh.(id) with
  | Some h -> h
  | None ->
      let buckets = buckets_of id in
      let h =
        {
          hc_buckets = buckets;
          hc_counts = Array.make (List.length buckets + 1) 0;
          hc_sum = 0;
          hc_obs = 0;
        }
      in
      l.lh.(id) <- Some h;
      h

let observe hid v =
  let h = hcell (local ()) hid in
  let rec slot i = function
    | bound :: rest -> if v <= bound then i else slot (i + 1) rest
    | [] -> i
  in
  let i = slot 0 h.hc_buckets in
  h.hc_counts.(i) <- h.hc_counts.(i) + 1;
  h.hc_sum <- h.hc_sum + v;
  h.hc_obs <- h.hc_obs + 1

(* ---- snapshots -------------------------------------------------------- *)

type hist_snapshot = {
  buckets : int list;
  counts : int array;
  sum : int;
  observations : int;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

let sorted kvs = List.sort (fun (a, _) (b, _) -> compare a b) kvs

let snapshot () =
  let l = local () in
  {
    counters =
      sorted
        (List.map
           (fun (name, id) -> (name, if id < Array.length l.lc then l.lc.(id) else 0))
           (bindings ctr_names));
    gauges =
      sorted
        (List.map
           (fun (name, id) -> (name, if id < Array.length l.lg then l.lg.(id) else 0))
           (bindings gauge_names));
    histograms =
      sorted
        (List.map
           (fun (name, id) ->
             match if id < Array.length l.lh then l.lh.(id) else None with
             | Some h ->
                 ( name,
                   {
                     buckets = h.hc_buckets;
                     counts = Array.copy h.hc_counts;
                     sum = h.hc_sum;
                     observations = h.hc_obs;
                   } )
             | None ->
                 let buckets = buckets_of id in
                 ( name,
                   {
                     buckets;
                     counts = Array.make (List.length buckets + 1) 0;
                     sum = 0;
                     observations = 0;
                   } ))
           (bindings hist_names));
  }

let reset () =
  let l = local () in
  Array.fill l.lc 0 (Array.length l.lc) 0;
  Array.fill l.lg 0 (Array.length l.lg) 0;
  Array.iter
    (function
      | None -> ()
      | Some h ->
          Array.fill h.hc_counts 0 (Array.length h.hc_counts) 0;
          h.hc_sum <- 0;
          h.hc_obs <- 0)
    l.lh

let merge (snap : snapshot) =
  List.iter (fun (name, v) -> if v <> 0 then add (counter name) v) snap.counters;
  List.iter
    (fun (name, v) ->
      let g = gauge name in
      if v > gauge_value g then set g v)
    snap.gauges;
  List.iter
    (fun (name, (h : hist_snapshot)) ->
      if h.observations > 0 then begin
        let id = histogram ~buckets:h.buckets name in
        let cell = hcell (local ()) id in
        if cell.hc_buckets = h.buckets then
          Array.iteri (fun i c -> cell.hc_counts.(i) <- cell.hc_counts.(i) + c) h.counts
        else begin
          (* Layout disagreement (re-registration with other buckets):
             fold everything into the overflow slot rather than lose it. *)
          let last = Array.length cell.hc_counts - 1 in
          cell.hc_counts.(last) <- cell.hc_counts.(last) + Array.fold_left ( + ) 0 h.counts
        end;
        cell.hc_sum <- cell.hc_sum + h.sum;
        cell.hc_obs <- cell.hc_obs + h.observations
      end)
    snap.histograms

let find_counter snap name = List.assoc_opt name snap.counters
let find_gauge snap name = List.assoc_opt name snap.gauges
let find_histogram snap name = List.assoc_opt name snap.histograms

(* ---- export ----------------------------------------------------------- *)

let to_json snap =
  let ints kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) kvs) in
  let hist (name, h) =
    ( name,
      Json.Obj
        [
          ("buckets", Json.List (List.map (fun b -> Json.Int b) h.buckets));
          ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.counts)));
          ("sum", Json.Int h.sum);
          ("observations", Json.Int h.observations);
        ] )
  in
  Json.Obj
    [
      ("schema", Json.String "hsched.metrics/1");
      ("counters", ints snap.counters);
      ("gauges", ints snap.gauges);
      ("histograms", Json.Obj (List.map hist snap.histograms));
    ]

let of_json json =
  let ints key =
    match Json.member key json with
    | Some (Json.Obj kvs) ->
        let pairs =
          List.filter_map
            (fun (k, v) -> match v with Json.Int i -> Some (k, i) | _ -> None)
          kvs
        in
        if List.length pairs = List.length kvs then Ok (sorted pairs)
        else Error (Printf.sprintf "%S values must be integers" key)
    | Some _ -> Error (Printf.sprintf "%S must be an object" key)
    | None -> Error (Printf.sprintf "missing %S" key)
  in
  let hist name j =
    let int_list key =
      match Json.member key j with
      | Some (Json.List xs) ->
          let ints =
            List.filter_map (function Json.Int i -> Some i | _ -> None) xs
          in
          if List.length ints = List.length xs then Some ints else None
      | _ -> None
    in
    let int key =
      match Json.member key j with Some (Json.Int i) -> Some i | _ -> None
    in
    match (int_list "buckets", int_list "counts", int "sum", int "observations") with
    | Some buckets, Some counts, Some sum, Some observations
      when List.length counts = List.length buckets + 1 ->
        Ok (name, { buckets; counts = Array.of_list counts; sum; observations })
    | _ -> Error (Printf.sprintf "malformed histogram %S" name)
  in
  match Json.member "schema" json with
  | Some (Json.String "hsched.metrics/1") -> (
      match (ints "counters", ints "gauges", Json.member "histograms" json) with
      | Error e, _, _ | _, Error e, _ -> Error e
      | Ok counters, Ok gauges, Some (Json.Obj hs) ->
          let rec fold acc = function
            | [] -> Ok (List.rev acc)
            | (name, j) :: rest -> (
                match hist name j with
                | Error _ as e -> e
                | Ok h -> fold (h :: acc) rest)
          in
          Result.map
            (fun histograms -> { counters; gauges; histograms = sorted histograms })
            (fold [] hs)
      | Ok _, Ok _, _ -> Error "missing \"histograms\" object")
  | Some (Json.String s) ->
      Error (Printf.sprintf "unsupported metrics schema %S (want \"hsched.metrics/1\")" s)
  | _ -> Error "not an hsched metrics document (no \"schema\")"

(* Prometheus text exposition (version 0.0.4).  Metric names are the
   registry names with every character outside [a-zA-Z0-9_] mapped to
   '_', under an "hsched_" namespace prefix; histogram buckets are
   emitted cumulatively with the closing "+Inf" bucket, as the format
   requires. *)
let prometheus_name name =
  let b = Bytes.of_string ("hsched_" ^ name) in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  Bytes.to_string b

let to_prometheus snap =
  let buf = Buffer.create 1024 in
  let simple kind (name, v) =
    let n = prometheus_name name in
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n%s %d\n" n kind n v)
  in
  List.iter (simple "counter") snap.counters;
  List.iter (simple "gauge") snap.gauges;
  List.iter
    (fun (name, h) ->
      let n = prometheus_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
      let cum = ref 0 in
      List.iteri
        (fun i bound ->
          cum := !cum + h.counts.(i);
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n bound !cum))
        h.buckets;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.observations);
      Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" n h.sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n h.observations))
    snap.histograms;
  Buffer.contents buf

let pp_summary fmt snap =
  Format.fprintf fmt "@[<v>";
  let section title kvs pp_v =
    if kvs <> [] then begin
      Format.fprintf fmt "%s:@," title;
      List.iter (fun (k, v) -> Format.fprintf fmt "  %-32s %a@," k pp_v v) kvs
    end
  in
  section "counters" snap.counters (fun fmt v -> Format.fprintf fmt "%d" v);
  section "gauges" snap.gauges (fun fmt v -> Format.fprintf fmt "%d" v);
  section "histograms" snap.histograms (fun fmt h ->
      Format.fprintf fmt "n=%d sum=%d buckets=[%s] counts=[%s]" h.observations h.sum
        (String.concat ";" (List.map string_of_int h.buckets))
        (String.concat ";" (Array.to_list (Array.map string_of_int h.counts))));
  Format.fprintf fmt "@]"
