(** Process-global metrics registry; see the interface for conventions. *)

type counter = { mutable c : int }
type gauge = { mutable g : int }

type histogram = {
  h_buckets : int list;  (* upper bounds, ascending *)
  h_counts : int array;  (* length = #buckets + 1, last = overflow *)
  mutable h_sum : int;
  mutable h_obs : int;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 8

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c = 0 } in
      Hashtbl.add counters name c;
      c

let incr c = c.c <- c.c + 1
let add c by = c.c <- c.c + by
let value c = c.c

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
      let g = { g = 0 } in
      Hashtbl.add gauges name g;
      g

let set g v = g.g <- v
let gauge_value g = g.g

let default_buckets = [ 1; 10; 100; 1_000; 10_000; 100_000; 1_000_000 ]

let histogram ?(buckets = default_buckets) name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let buckets = List.sort_uniq compare buckets in
      let h =
        {
          h_buckets = buckets;
          h_counts = Array.make (List.length buckets + 1) 0;
          h_sum = 0;
          h_obs = 0;
        }
      in
      Hashtbl.add histograms name h;
      h

let observe h v =
  let rec slot i = function
    | bound :: rest -> if v <= bound then i else slot (i + 1) rest
    | [] -> i
  in
  let i = slot 0 h.h_buckets in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum + v;
  h.h_obs <- h.h_obs + 1

(* ---- snapshots -------------------------------------------------------- *)

type hist_snapshot = {
  buckets : int list;
  counts : int array;
  sum : int;
  observations : int;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot () =
  {
    counters = sorted_bindings counters (fun c -> c.c);
    gauges = sorted_bindings gauges (fun g -> g.g);
    histograms =
      sorted_bindings histograms (fun h ->
          {
            buckets = h.h_buckets;
            counts = Array.copy h.h_counts;
            sum = h.h_sum;
            observations = h.h_obs;
          });
  }

let reset () =
  Hashtbl.iter (fun _ c -> c.c <- 0) counters;
  Hashtbl.iter (fun _ g -> g.g <- 0) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
      h.h_sum <- 0;
      h.h_obs <- 0)
    histograms

let find_counter snap name = List.assoc_opt name snap.counters
let find_gauge snap name = List.assoc_opt name snap.gauges

(* ---- export ----------------------------------------------------------- *)

let to_json snap =
  let ints kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) kvs) in
  let hist (name, h) =
    ( name,
      Json.Obj
        [
          ("buckets", Json.List (List.map (fun b -> Json.Int b) h.buckets));
          ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.counts)));
          ("sum", Json.Int h.sum);
          ("observations", Json.Int h.observations);
        ] )
  in
  Json.Obj
    [
      ("schema", Json.String "hsched.metrics/1");
      ("counters", ints snap.counters);
      ("gauges", ints snap.gauges);
      ("histograms", Json.Obj (List.map hist snap.histograms));
    ]

let pp_summary fmt snap =
  Format.fprintf fmt "@[<v>";
  let section title kvs pp_v =
    if kvs <> [] then begin
      Format.fprintf fmt "%s:@," title;
      List.iter (fun (k, v) -> Format.fprintf fmt "  %-32s %a@," k pp_v v) kvs
    end
  in
  section "counters" snap.counters (fun fmt v -> Format.fprintf fmt "%d" v);
  section "gauges" snap.gauges (fun fmt v -> Format.fprintf fmt "%d" v);
  section "histograms" snap.histograms (fun fmt h ->
      Format.fprintf fmt "n=%d sum=%d buckets=[%s] counts=[%s]" h.observations h.sum
        (String.concat ";" (List.map string_of_int h.buckets))
        (String.concat ";" (Array.to_list (Array.map string_of_int h.counts))));
  Format.fprintf fmt "@]"
