(** Metrics registry: named counters, gauges, and fixed-bucket
    histograms.  Names are process-global; values are {e domain-local}.

    Instruments register a metric once at module initialisation
    ([let pivots = Metrics.counter "simplex.pivots"]) and then mutate a
    plain cell — an increment is a domain-local-storage read and an
    integer store, cheap enough for the simplex pivot loop and free of
    cross-domain contention.  Registration is idempotent: the same name
    yields the same cell, so functor instantiations (exact and float
    fields share one solver module) do not double-register.

    Each domain accumulates into its own cells: a worker domain of the
    {!Hs_exec} pool takes a {!snapshot} when it finishes and the main
    domain folds it back in with {!merge}.  Because counters count
    algorithmic events and merging is commutative, a parallel sweep's
    final snapshot equals the sequential one.

    Snapshots are {e deterministic}: entries are sorted by name and
    counters count algorithmic events (pivots, nodes, probes), never
    wall-clock — two identical seeded solves produce byte-identical
    snapshots, which the test suite asserts on.

    Naming convention (DESIGN.md §9): [<layer>.<quantity>] in
    [snake_case], e.g. ["simplex.pivots"], ["bb.nodes"],
    ["sched.migrations"]; budget meters use
    ["budget.<resource>.limit" / ".consumed"]. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Registered (or retrieved) by name; starts at 0. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : string -> gauge
(** A settable integer; starts at 0. *)

val set : gauge -> int -> unit
val gauge_value : gauge -> int

val histogram : ?buckets:int list -> string -> histogram
(** Fixed upper-bound buckets (default powers of ten up to 10^6), plus
    an implicit overflow bucket.  Re-registering an existing name keeps
    the original buckets. *)

val ms_buckets : int list
(** The shared wall-millisecond bucket ladder (1 ms .. 10 s) used by
    every [*.phase.*_ms] and per-event latency histogram across the
    service and online subsystems, so their quantiles line up in
    [hsched stats] and the Prometheus exposition. *)

val observe : histogram -> int -> unit

(** {1 Snapshots} *)

type hist_snapshot = {
  buckets : int list;  (** upper bounds, ascending *)
  counts : int array;  (** length = #buckets + 1; last = overflow *)
  sum : int;
  observations : int;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;  (** sorted by name *)
  histograms : (string * hist_snapshot) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
(** The calling domain's values for every registered name (metrics the
    domain never touched read as zero). *)

val reset : unit -> unit
(** Zero every metric of the calling domain (registrations persist). *)

val merge : snapshot -> unit
(** Fold a snapshot — typically taken in a worker domain — into the
    calling domain's registry: counters and histogram buckets are
    summed, gauges keep the maximum of both sides.  Every operation is
    commutative and associative, so the result is independent of the
    order worker snapshots arrive in. *)

val find_counter : snapshot -> string -> int option
val find_gauge : snapshot -> string -> int option
val find_histogram : snapshot -> string -> hist_snapshot option

val to_json : snapshot -> Json.t
(** Stable shape: [{"schema": "hsched.metrics/1", "counters": {..},
    "gauges": {..}, "histograms": {..}}]. *)

val of_json : Json.t -> (snapshot, string) result
(** Decode {!to_json} output back into a snapshot — how [hsched stats]
    reconstructs a daemon's registry from the introspection response.
    Total on untrusted input: a wrong schema tag, a non-integer value or
    a histogram whose [counts] length disagrees with its [buckets] is an
    [Error], never an exception. *)

val prometheus_name : string -> string
(** The exposition name for a registry name: prefixed ["hsched_"],
    characters outside [[a-zA-Z0-9_]] mapped to ['_'].  Exposed so the
    naming contract is testable. *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition (format version 0.0.4).  Names are
    prefixed ["hsched_"] with every character outside [[a-zA-Z0-9_]]
    mapped to ['_']; counters and gauges become single samples under a
    [# TYPE] header, histograms emit cumulative [_bucket{le="..."}]
    samples closed by [le="+Inf"], then [_sum] and [_count]. *)

val pp_summary : Format.formatter -> snapshot -> unit
(** Human-readable table (one metric per line), for [--stats]. *)
