(** Structured phase tracing for the solver pipeline.

    Nestable spans with monotonic timestamps and typed attributes,
    recorded into a {e domain-local} sink.  The sink is {e disabled} by
    default and {!with_span} is then a direct call of its thunk — no
    event is recorded, nothing is retained — so instrumentation can stay
    in hot paths permanently.  Worker domains record into their own
    sinks without synchronisation; {!config}/{!set_config} hand the
    parent's tracing setup to a worker and {!absorb} merges a worker's
    spans back, tagged with its [domain.id].

    Naming convention (see DESIGN.md §9): span names are
    [<layer>.<operation>] ("search.probe", "simplex.solve", "bb.optimal")
    and the category is the layer.

    The recorder is exception-safe: a span whose thunk raises is closed
    and recorded before the exception propagates, so a run cut short by
    budget exhaustion still exports a well-formed (merely truncated)
    trace. *)

type attr = Str of string | Int of int | Bool of bool | Float of float

type span = {
  name : string;
  cat : string;  (** category = pipeline layer *)
  start_ns : int64;  (** monotonic, from {!set_clock}'s clock *)
  dur_ns : int64;
  depth : int;  (** nesting depth at the time the span was open (0 = root) *)
  seq : int;  (** global open order — strictly increasing *)
  args : (string * attr) list;
}

val enabled : unit -> bool
val enable : unit -> unit

val disable : unit -> unit
(** Stop recording.  Already-collected spans are kept until {!clear}. *)

val set_clock : (unit -> int64) -> unit
(** Install the nanosecond clock.  The default derives from [Sys.time]
    (process CPU time — monotonic, coarse); the CLI installs a wall
    clock.  Must be monotonic non-decreasing. *)

val with_span : ?cat:string -> ?args:(string * attr) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span.  When the tracer is
    disabled this is exactly [f ()]. *)

val add_args : (string * attr) list -> unit
(** Attach attributes to the innermost open span (for values only known
    mid-span, e.g. a probe's feasibility verdict).  No-op when disabled
    or outside any span. *)

val record_span :
  ?cat:string ->
  ?args:(string * attr) list ->
  start_ns:int64 ->
  dur_ns:int64 ->
  string ->
  unit
(** Record an already-completed span with explicit timestamps.  For
    phases that are only observed after the fact — a daemon measures a
    request's queue wait at dispatch, long after the wait began — yet
    should still appear on the timeline.  No-op when disabled. *)

val spans : unit -> span list
(** Completed spans in completion order.  Enclosing spans complete after
    their children, so a parent appears {e after} its children here;
    [seq] recovers the open order. *)

val dropped : unit -> int
(** Spans discarded after the retention cap ({!max_spans}) was reached —
    by the recorder or by {!absorb}/{!absorb_remote}.  Multicore span
    loss is counted here, never silent. *)

val max_spans : unit -> int
(** The calling domain's retention cap (default 2^20 spans). *)

val set_max_spans : int -> unit
(** Set the calling domain's retention cap.  Spans past it are dropped
    and counted in {!dropped}.  Raises [Invalid_argument] when < 1. *)

val clear : unit -> unit
(** Drop collected spans (open spans survive; their records are kept
    when they close). *)

val with_disabled : (unit -> 'a) -> 'a
(** Run a thunk with the tracer forced off, restoring the previous
    enabled/disabled state afterwards — the fuzz harness uses this to
    leave the (domain-local) tracing flags alone. *)

(** {1 Trace context}

    A trace id names one logical request end to end, across domains and
    processes: the client mints it, the wire carries it, and every side
    tags its spans with it so a merged timeline can be re-assembled. *)

val trace_id : unit -> string option
(** The calling domain's current trace id ([None] = untraced). *)

val set_trace_id : string option -> unit
(** Install (or clear) the trace id.  {!config}/{!set_config} hand it to
    worker domains; the Chrome exporter records it in [otherData]. *)

(** {1 Cross-domain handoff (used by [Hs_exec])} *)

type config
(** The enabled flag, clock and trace id of a sink, without its recorded
    spans. *)

val config : unit -> config
(** Capture the calling domain's tracing setup. *)

val set_config : config -> unit
(** Install a captured setup in the calling domain (typically a fresh
    worker, whose sink starts empty and disabled). *)

val absorb : domain:int -> span list -> unit
(** Append spans collected in a worker domain to the calling domain's
    sink.  Each span gets a [("domain.id", Int domain)] attribute (the
    Chrome exporter maps it to a per-worker [tid]) and a re-numbered
    [seq] past the sink's current maximum, preserving the worker's
    relative order.  Works whether or not the sink is enabled.  Spans
    past the retention cap are dropped and counted in {!dropped}. *)

val absorb_remote : span list -> unit
(** Append spans that crossed a process boundary (a daemon's server-side
    spans carried back on a traced response).  Like {!absorb} but tags
    each span [("remote", Bool true)] instead, which the Chrome exporter
    maps to a second process ([pid] 2, named "server") so the merged
    timeline keeps client and server on separate track groups. *)

(** {1 Exporters} *)

val span_to_json : span -> Json.t
(** Wire/JSONL shape of one span: [{"name", "cat", "start_ns",
    "dur_ns", "depth", "seq", "args"}]. *)

val span_of_json : Json.t -> (span, string) result
(** Decode {!span_to_json} output.  Total on untrusted input: missing
    optional fields default, malformed args are skipped, and a missing
    [name]/[start_ns]/[dur_ns] is the [Error]. *)

val to_chrome : unit -> Json.t
(** Chrome [trace_event] format: an object with a ["traceEvents"] list
    of complete ("ph":"X") events, loadable in [chrome://tracing] and
    Perfetto.  Timestamps are microseconds. *)

val to_jsonl : unit -> string
(** One JSON object per completed span per line. *)

val write_chrome : string -> (unit, string) result
val write_jsonl : string -> (unit, string) result
