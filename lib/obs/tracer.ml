(** Structured phase tracing: nestable spans into a domain-local sink.

    Disabled (the default) the recorder is a conditional branch and a
    direct call — safe to leave in hot paths.  Enabled, each span costs
    two clock reads and one record allocation at close.

    Every domain has its own sink (domain-local storage), so worker
    domains of the {!Hs_exec} pool record without synchronisation; the
    pool hands the parent's {!config} to each worker and {!absorb}s the
    workers' spans back into the parent sink, tagged with the worker's
    [domain.id]. *)

type attr = Str of string | Int of int | Bool of bool | Float of float

type span = {
  name : string;
  cat : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
  seq : int;
  args : (string * attr) list;
}

(* An open span, mutable so [add_args] can extend it in place. *)
type open_span = {
  o_name : string;
  o_cat : string;
  o_start : int64;
  o_depth : int;
  o_seq : int;
  mutable o_args : (string * attr) list;
}

(* Bound the sink so a runaway (or budget-exhausted) solve cannot hold
   unbounded memory; past the cap, spans are counted but not retained.
   The cap is per-sink and settable: a long-lived daemon keeps it small
   and clears between traced batches. *)
let default_max_spans = 1 lsl 20

type state = {
  mutable on : bool;
  mutable clock : unit -> int64;
  mutable stack : open_span list;
  mutable completed : span list;  (* reverse completion order *)
  mutable ncompleted : int;
  mutable ndropped : int;
  mutable next_seq : int;
  mutable cap : int;
  mutable trace : string option;  (* trace-context id, None = untraced *)
}

let default_clock () = Int64.of_float (Sys.time () *. 1e9)

let dls : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        on = false;
        clock = default_clock;
        stack = [];
        completed = [];
        ncompleted = 0;
        ndropped = 0;
        next_seq = 0;
        cap = default_max_spans;
        trace = None;
      })

let state () = Domain.DLS.get dls

let enabled () = (state ()).on
let enable () = (state ()).on <- true
let disable () = (state ()).on <- false
let set_clock c = (state ()).clock <- c

let max_spans () = (state ()).cap

let set_max_spans cap =
  if cap < 1 then invalid_arg "Tracer.set_max_spans: cap must be >= 1";
  (state ()).cap <- cap

let trace_id () = (state ()).trace
let set_trace_id t = (state ()).trace <- t

type config = { c_on : bool; c_clock : unit -> int64; c_trace : string option }

let config () =
  let st = state () in
  { c_on = st.on; c_clock = st.clock; c_trace = st.trace }

let set_config cfg =
  let st = state () in
  st.on <- cfg.c_on;
  st.clock <- cfg.c_clock;
  st.trace <- cfg.c_trace

let clear () =
  let st = state () in
  st.completed <- [];
  st.ncompleted <- 0;
  st.ndropped <- 0;
  st.next_seq <- 0

let with_disabled f =
  let st = state () in
  let was = st.on in
  st.on <- false;
  Fun.protect ~finally:(fun () -> st.on <- was) f

let record st sp =
  if st.ncompleted >= st.cap then st.ndropped <- st.ndropped + 1
  else begin
    st.completed <- sp :: st.completed;
    st.ncompleted <- st.ncompleted + 1
  end

let close st o =
  let stop = st.clock () in
  (match st.stack with _ :: rest -> st.stack <- rest | [] -> ());
  record st
    {
      name = o.o_name;
      cat = o.o_cat;
      start_ns = o.o_start;
      dur_ns = Int64.max 0L (Int64.sub stop o.o_start);
      depth = o.o_depth;
      seq = o.o_seq;
      args = List.rev o.o_args;
    }

let with_span ?(cat = "") ?(args = []) name f =
  let st = state () in
  if not st.on then f ()
  else begin
    let o =
      {
        o_name = name;
        o_cat = cat;
        o_start = st.clock ();
        o_depth = List.length st.stack;
        o_seq = st.next_seq;
        o_args = List.rev args;
      }
    in
    st.next_seq <- st.next_seq + 1;
    st.stack <- o :: st.stack;
    Fun.protect ~finally:(fun () -> close st o) f
  end

let add_args args =
  let st = state () in
  if st.on then
    match st.stack with
    | o :: _ -> o.o_args <- List.rev_append args o.o_args
    | [] -> ()

let spans () = List.rev (state ()).completed
let dropped () = (state ()).ndropped

(* A completed span with explicit timestamps, recorded after the fact —
   phases only observed once they are over (a queue wait is measured at
   dispatch, long after it started) still become first-class spans. *)
let record_span ?(cat = "") ?(args = []) ~start_ns ~dur_ns name =
  let st = state () in
  if st.on then begin
    let seq = st.next_seq in
    st.next_seq <- seq + 1;
    record st
      {
        name;
        cat;
        start_ns;
        dur_ns = Int64.max 0L dur_ns;
        depth = List.length st.stack;
        seq;
        args;
      }
  end

let absorb_tagged ~tag worker_spans =
  let st = state () in
  (* Re-number [seq] past everything already open here so the merged
     stream stays strictly increasing; keep the workers' relative order. *)
  let base = st.next_seq in
  let maxseq = ref (-1) in
  List.iter
    (fun sp ->
      if sp.seq > !maxseq then maxseq := sp.seq;
      record st { sp with seq = base + sp.seq; args = sp.args @ tag })
    worker_spans;
  if !maxseq >= 0 then st.next_seq <- base + !maxseq + 1

let absorb ~domain worker_spans =
  absorb_tagged ~tag:[ ("domain.id", Int domain) ] worker_spans

let absorb_remote remote_spans =
  (* Spans that crossed a process boundary (a daemon answering a traced
     request): keep every tag they already carry and add the [remote]
     marker the Chrome exporter maps to its own process track. *)
  absorb_tagged ~tag:[ ("remote", Bool true) ] remote_spans

(* ---- exporters -------------------------------------------------------- *)

let json_of_attr = function
  | Str s -> Json.String s
  | Int i -> Json.Int i
  | Bool b -> Json.Bool b
  | Float f -> Json.Float f

let json_args args = Json.Obj (List.map (fun (k, v) -> (k, json_of_attr v)) args)

let is_remote sp =
  match List.assoc_opt "remote" sp.args with Some (Bool b) -> b | _ -> false

(* Chrome trace_event complete event; timestamps in microseconds.  Spans
   absorbed from a worker carry a [domain.id] arg and get their own
   Perfetto track via [tid]; the recording domain's own spans are tid 1.
   Spans absorbed from another process ({!absorb_remote}) render as a
   second process ([pid] 2), so a merged client/server trace keeps the
   two sides on separate track groups in one timeline. *)
let chrome_event sp =
  let tid =
    match List.assoc_opt "domain.id" sp.args with Some (Int d) -> d + 1 | _ -> 1
  in
  Json.Obj
    [
      ("name", Json.String sp.name);
      ("cat", Json.String (if sp.cat = "" then "hsched" else sp.cat));
      ("ph", Json.String "X");
      ("ts", Json.Float (Int64.to_float sp.start_ns /. 1e3));
      ("dur", Json.Float (Int64.to_float sp.dur_ns /. 1e3));
      ("pid", Json.Int (if is_remote sp then 2 else 1));
      ("tid", Json.Int tid);
      ("args", json_args (("depth", Int sp.depth) :: ("seq", Int sp.seq) :: sp.args));
    ]

let process_name ~pid name =
  Json.Obj
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let to_chrome () =
  let all = spans () in
  let events =
    all |> List.sort (fun a b -> compare a.seq b.seq) |> List.map chrome_event
  in
  let events =
    (* Name the two process tracks only when the trace is actually a
       merged one, so single-process traces are byte-stable. *)
    if List.exists is_remote all then
      process_name ~pid:1 "client" :: process_name ~pid:2 "server" :: events
    else events
  in
  Json.Obj
    ([ ("traceEvents", Json.List events); ("displayTimeUnit", Json.String "ns") ]
    @ [
        ( "otherData",
          Json.Obj
            (("producer", Json.String "hsched")
             :: (match trace_id () with
                | Some id -> [ ("trace_id", Json.String id) ]
                | None -> [])
            @ [ ("droppedSpans", Json.Int (dropped ())) ]) );
      ])

(* ---- wire codec (trace propagation across the service protocol) ------ *)

let span_to_json sp =
  Json.Obj
    [
      ("name", Json.String sp.name);
      ("cat", Json.String sp.cat);
      ("start_ns", Json.Int (Int64.to_int sp.start_ns));
      ("dur_ns", Json.Int (Int64.to_int sp.dur_ns));
      ("depth", Json.Int sp.depth);
      ("seq", Json.Int sp.seq);
      ("args", json_args sp.args);
    ]

let span_of_json j =
  let str k = match Json.member k j with Some (Json.String s) -> Some s | _ -> None in
  let int k = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None in
  let attr = function
    | Json.String s -> Some (Str s)
    | Json.Int i -> Some (Int i)
    | Json.Bool b -> Some (Bool b)
    | Json.Float f -> Some (Float f)
    | _ -> None
  in
  let args =
    match Json.member "args" j with
    | Some (Json.Obj kvs) ->
        List.filter_map (fun (k, v) -> Option.map (fun a -> (k, a)) (attr v)) kvs
    | _ -> []
  in
  match (str "name", int "start_ns", int "dur_ns") with
  | Some name, Some start_ns, Some dur_ns ->
      Ok
        {
          name;
          cat = Option.value ~default:"" (str "cat");
          start_ns = Int64.of_int start_ns;
          dur_ns = Int64.of_int dur_ns;
          depth = Option.value ~default:0 (int "depth");
          seq = Option.value ~default:0 (int "seq");
          args;
        }
  | _ -> Error "span needs string \"name\" and integer \"start_ns\"/\"dur_ns\""

let jsonl_line sp = Json.to_string (span_to_json sp)

let to_jsonl () =
  String.concat "\n" (List.map jsonl_line (spans ()))
  ^ if (state ()).completed = [] then "" else "\n"

let write_file path contents =
  match open_out path with
  | exception Sys_error e -> Error e
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc contents;
          Ok ())

let write_chrome path = write_file path (Json.to_string (to_chrome ()))
let write_jsonl path = write_file path (to_jsonl ())
