(** Structured phase tracing: nestable spans into a domain-local sink.

    Disabled (the default) the recorder is a conditional branch and a
    direct call — safe to leave in hot paths.  Enabled, each span costs
    two clock reads and one record allocation at close.

    Every domain has its own sink (domain-local storage), so worker
    domains of the {!Hs_exec} pool record without synchronisation; the
    pool hands the parent's {!config} to each worker and {!absorb}s the
    workers' spans back into the parent sink, tagged with the worker's
    [domain.id]. *)

type attr = Str of string | Int of int | Bool of bool | Float of float

type span = {
  name : string;
  cat : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
  seq : int;
  args : (string * attr) list;
}

(* An open span, mutable so [add_args] can extend it in place. *)
type open_span = {
  o_name : string;
  o_cat : string;
  o_start : int64;
  o_depth : int;
  o_seq : int;
  mutable o_args : (string * attr) list;
}

(* Bound the sink so a runaway (or budget-exhausted) solve cannot hold
   unbounded memory; past the cap, spans are counted but not retained. *)
let max_spans = 1 lsl 20

type state = {
  mutable on : bool;
  mutable clock : unit -> int64;
  mutable stack : open_span list;
  mutable completed : span list;  (* reverse completion order *)
  mutable ncompleted : int;
  mutable ndropped : int;
  mutable next_seq : int;
}

let default_clock () = Int64.of_float (Sys.time () *. 1e9)

let dls : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        on = false;
        clock = default_clock;
        stack = [];
        completed = [];
        ncompleted = 0;
        ndropped = 0;
        next_seq = 0;
      })

let state () = Domain.DLS.get dls

let enabled () = (state ()).on
let enable () = (state ()).on <- true
let disable () = (state ()).on <- false
let set_clock c = (state ()).clock <- c

type config = { c_on : bool; c_clock : unit -> int64 }

let config () =
  let st = state () in
  { c_on = st.on; c_clock = st.clock }

let set_config cfg =
  let st = state () in
  st.on <- cfg.c_on;
  st.clock <- cfg.c_clock

let clear () =
  let st = state () in
  st.completed <- [];
  st.ncompleted <- 0;
  st.ndropped <- 0;
  st.next_seq <- 0

let with_disabled f =
  let st = state () in
  let was = st.on in
  st.on <- false;
  Fun.protect ~finally:(fun () -> st.on <- was) f

let record st sp =
  if st.ncompleted >= max_spans then st.ndropped <- st.ndropped + 1
  else begin
    st.completed <- sp :: st.completed;
    st.ncompleted <- st.ncompleted + 1
  end

let close st o =
  let stop = st.clock () in
  (match st.stack with _ :: rest -> st.stack <- rest | [] -> ());
  record st
    {
      name = o.o_name;
      cat = o.o_cat;
      start_ns = o.o_start;
      dur_ns = Int64.max 0L (Int64.sub stop o.o_start);
      depth = o.o_depth;
      seq = o.o_seq;
      args = List.rev o.o_args;
    }

let with_span ?(cat = "") ?(args = []) name f =
  let st = state () in
  if not st.on then f ()
  else begin
    let o =
      {
        o_name = name;
        o_cat = cat;
        o_start = st.clock ();
        o_depth = List.length st.stack;
        o_seq = st.next_seq;
        o_args = List.rev args;
      }
    in
    st.next_seq <- st.next_seq + 1;
    st.stack <- o :: st.stack;
    Fun.protect ~finally:(fun () -> close st o) f
  end

let add_args args =
  let st = state () in
  if st.on then
    match st.stack with
    | o :: _ -> o.o_args <- List.rev_append args o.o_args
    | [] -> ()

let spans () = List.rev (state ()).completed
let dropped () = (state ()).ndropped

let absorb ~domain worker_spans =
  let st = state () in
  (* Re-number [seq] past everything already open here so the merged
     stream stays strictly increasing; keep the workers' relative order. *)
  let base = st.next_seq in
  let maxseq = ref (-1) in
  List.iter
    (fun sp ->
      if sp.seq > !maxseq then maxseq := sp.seq;
      record st
        { sp with seq = base + sp.seq; args = sp.args @ [ ("domain.id", Int domain) ] })
    worker_spans;
  if !maxseq >= 0 then st.next_seq <- base + !maxseq + 1

(* ---- exporters -------------------------------------------------------- *)

let json_of_attr = function
  | Str s -> Json.String s
  | Int i -> Json.Int i
  | Bool b -> Json.Bool b
  | Float f -> Json.Float f

let json_args args = Json.Obj (List.map (fun (k, v) -> (k, json_of_attr v)) args)

(* Chrome trace_event complete event; timestamps in microseconds.  Spans
   absorbed from a worker carry a [domain.id] arg and get their own
   Perfetto track via [tid]; the recording domain's own spans are tid 1. *)
let chrome_event sp =
  let tid =
    match List.assoc_opt "domain.id" sp.args with Some (Int d) -> d + 1 | _ -> 1
  in
  Json.Obj
    [
      ("name", Json.String sp.name);
      ("cat", Json.String (if sp.cat = "" then "hsched" else sp.cat));
      ("ph", Json.String "X");
      ("ts", Json.Float (Int64.to_float sp.start_ns /. 1e3));
      ("dur", Json.Float (Int64.to_float sp.dur_ns /. 1e3));
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", json_args (("depth", Int sp.depth) :: ("seq", Int sp.seq) :: sp.args));
    ]

let to_chrome () =
  let events =
    spans () |> List.sort (fun a b -> compare a.seq b.seq) |> List.map chrome_event
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ns");
      ( "otherData",
        Json.Obj
          [
            ("producer", Json.String "hsched");
            ("droppedSpans", Json.Int (dropped ()));
          ] );
    ]

let jsonl_line sp =
  Json.to_string
    (Json.Obj
       [
         ("name", Json.String sp.name);
         ("cat", Json.String sp.cat);
         ("start_ns", Json.Int (Int64.to_int sp.start_ns));
         ("dur_ns", Json.Int (Int64.to_int sp.dur_ns));
         ("depth", Json.Int sp.depth);
         ("seq", Json.Int sp.seq);
         ("args", json_args sp.args);
       ])

let to_jsonl () =
  String.concat "\n" (List.map jsonl_line (spans ()))
  ^ if (state ()).completed = [] then "" else "\n"

let write_file path contents =
  match open_out path with
  | exception Sys_error e -> Error e
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc contents;
          Ok ())

let write_chrome path = write_file path (Json.to_string (to_chrome ()))
let write_jsonl path = write_file path (to_jsonl ())
