(** Structured phase tracing: nestable spans into a process-global sink.

    Disabled (the default) the recorder is a conditional branch and a
    direct call — safe to leave in hot paths.  Enabled, each span costs
    two clock reads and one record allocation at close. *)

type attr = Str of string | Int of int | Bool of bool | Float of float

type span = {
  name : string;
  cat : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
  seq : int;
  args : (string * attr) list;
}

(* An open span, mutable so [add_args] can extend it in place. *)
type open_span = {
  o_name : string;
  o_cat : string;
  o_start : int64;
  o_depth : int;
  o_seq : int;
  mutable o_args : (string * attr) list;
}

(* Bound the sink so a runaway (or budget-exhausted) solve cannot hold
   unbounded memory; past the cap, spans are counted but not retained. *)
let max_spans = 1 lsl 20

type state = {
  mutable on : bool;
  mutable clock : unit -> int64;
  mutable stack : open_span list;
  mutable completed : span list;  (* reverse completion order *)
  mutable ncompleted : int;
  mutable ndropped : int;
  mutable next_seq : int;
}

let default_clock () = Int64.of_float (Sys.time () *. 1e9)

let st =
  {
    on = false;
    clock = default_clock;
    stack = [];
    completed = [];
    ncompleted = 0;
    ndropped = 0;
    next_seq = 0;
  }

let enabled () = st.on
let enable () = st.on <- true
let disable () = st.on <- false
let set_clock c = st.clock <- c

let clear () =
  st.completed <- [];
  st.ncompleted <- 0;
  st.ndropped <- 0;
  st.next_seq <- 0

let with_disabled f =
  let was = st.on in
  st.on <- false;
  Fun.protect ~finally:(fun () -> st.on <- was) f

let record sp =
  if st.ncompleted >= max_spans then st.ndropped <- st.ndropped + 1
  else begin
    st.completed <- sp :: st.completed;
    st.ncompleted <- st.ncompleted + 1
  end

let close o =
  let stop = st.clock () in
  (match st.stack with _ :: rest -> st.stack <- rest | [] -> ());
  record
    {
      name = o.o_name;
      cat = o.o_cat;
      start_ns = o.o_start;
      dur_ns = Int64.max 0L (Int64.sub stop o.o_start);
      depth = o.o_depth;
      seq = o.o_seq;
      args = List.rev o.o_args;
    }

let with_span ?(cat = "") ?(args = []) name f =
  if not st.on then f ()
  else begin
    let o =
      {
        o_name = name;
        o_cat = cat;
        o_start = st.clock ();
        o_depth = List.length st.stack;
        o_seq = st.next_seq;
        o_args = List.rev args;
      }
    in
    st.next_seq <- st.next_seq + 1;
    st.stack <- o :: st.stack;
    Fun.protect ~finally:(fun () -> close o) f
  end

let add_args args =
  if st.on then
    match st.stack with
    | o :: _ -> o.o_args <- List.rev_append args o.o_args
    | [] -> ()

let spans () = List.rev st.completed
let dropped () = st.ndropped

(* ---- exporters -------------------------------------------------------- *)

let json_of_attr = function
  | Str s -> Json.String s
  | Int i -> Json.Int i
  | Bool b -> Json.Bool b
  | Float f -> Json.Float f

let json_args args = Json.Obj (List.map (fun (k, v) -> (k, json_of_attr v)) args)

(* Chrome trace_event complete event; timestamps in microseconds. *)
let chrome_event sp =
  Json.Obj
    [
      ("name", Json.String sp.name);
      ("cat", Json.String (if sp.cat = "" then "hsched" else sp.cat));
      ("ph", Json.String "X");
      ("ts", Json.Float (Int64.to_float sp.start_ns /. 1e3));
      ("dur", Json.Float (Int64.to_float sp.dur_ns /. 1e3));
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
      ("args", json_args (("depth", Int sp.depth) :: ("seq", Int sp.seq) :: sp.args));
    ]

let to_chrome () =
  let events =
    spans () |> List.sort (fun a b -> compare a.seq b.seq) |> List.map chrome_event
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ns");
      ( "otherData",
        Json.Obj
          [
            ("producer", Json.String "hsched");
            ("droppedSpans", Json.Int st.ndropped);
          ] );
    ]

let jsonl_line sp =
  Json.to_string
    (Json.Obj
       [
         ("name", Json.String sp.name);
         ("cat", Json.String sp.cat);
         ("start_ns", Json.Int (Int64.to_int sp.start_ns));
         ("dur_ns", Json.Int (Int64.to_int sp.dur_ns));
         ("depth", Json.Int sp.depth);
         ("seq", Json.Int sp.seq);
         ("args", json_args sp.args);
       ])

let to_jsonl () =
  String.concat "\n" (List.map jsonl_line (spans ()))
  ^ if st.completed = [] then "" else "\n"

let write_file path contents =
  match open_out path with
  | exception Sys_error e -> Error e
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc contents;
          Ok ())

let write_chrome path = write_file path (Json.to_string (to_chrome ()))
let write_jsonl path = write_file path (to_jsonl ())
