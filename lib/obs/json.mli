(** A minimal JSON value type with an emitter and a parser.

    Deliberately tiny — just enough for the telemetry exporters
    ({!Tracer}, {!Metrics}) to write machine-readable files and for the
    test suite to round-trip them without an external JSON dependency.
    Strings are emitted with the standard escapes; numbers are either
    OCaml [int]s or floats (printed with ["%.17g"], so parsing back is
    exact). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Strict recursive-descent parser for the subset this module emits
    (which is a subset of standard JSON: no scientific-notation corner
    cases are missed — [1e9], escapes, and nesting all parse).  The
    error message carries a byte offset. *)

val member : string -> t -> t option
(** [member key (Obj _)] — first binding of [key], [None] otherwise. *)

val keys : t -> string list
(** Top-level keys of an [Obj], in declaration order; [[]] otherwise. *)
