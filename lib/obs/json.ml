(** Minimal JSON: an emitter and a strict parser, no dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- emitter ---------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ---- parser ----------------------------------------------------------- *)

exception Bad of int * string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' ->
                Buffer.add_char buf e;
                go ()
            | 'n' ->
                Buffer.add_char buf '\n';
                go ()
            | 'r' ->
                Buffer.add_char buf '\r';
                go ()
            | 't' ->
                Buffer.add_char buf '\t';
                go ()
            | 'b' ->
                Buffer.add_char buf '\b';
                go ()
            | 'f' ->
                Buffer.add_char buf '\012';
                go ()
            | 'u' ->
                if !pos + 4 > n then fail "bad \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                (match int_of_string_opt ("0x" ^ hex) with
                | None -> fail "bad \\u escape"
                | Some code ->
                    (* Re-encode the code point as UTF-8 (BMP only). *)
                    if code < 0x80 then Buffer.add_char buf (Char.chr code)
                    else if code < 0x800 then begin
                      Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                    end
                    else begin
                      Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                    end);
                go ()
            | _ -> fail "bad escape")
        | c ->
            Buffer.add_char buf c;
            go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elems [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "json: %s at byte %d" msg at)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let keys = function Obj kvs -> List.map fst kvs | _ -> []
