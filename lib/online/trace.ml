(* Typed event traces; see the interface for the validation contract. *)

open Hs_model
open Hs_laminar

type event =
  | Arrive of { ptimes : Ptime.t array }
  | Depart of { job : int }
  | Drain of { machine : int }

type t = { lam : Laminar.t; evs : (int * event) list }

let laminar t = t.lam
let events t = t.evs
let length t = List.length t.evs

let count p t = List.length (List.filter (fun (_, e) -> p e) t.evs)
let arrivals = count (function Arrive _ -> true | _ -> false)
let departures = count (function Depart _ -> true | _ -> false)
let drains = count (function Drain _ -> true | _ -> false)

(* ---- family restriction ---------------------------------------------- *)

let intersect members active =
  List.filter (fun i -> active.(i)) (Array.to_list members)

(* Group the base sets by their (non-empty) intersection with the active
   machines.  The keys are the restricted family; the groups feed the
   min-over-achievers processing times of [active_instance]. *)
let restriction_groups lam ~active =
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  for s = 0 to Laminar.size lam - 1 do
    let key = intersect (Laminar.members lam s) active in
    if key <> [] then
      match Hashtbl.find_opt groups key with
      | Some ids -> Hashtbl.replace groups key (s :: ids)
      | None ->
          Hashtbl.add groups key [ s ];
          order := key :: !order
  done;
  List.rev_map (fun key -> (key, List.rev (Hashtbl.find groups key))) !order

let restrict_laminar lam ~active =
  if not (Array.exists Fun.id active) then
    invalid_arg "Trace.restrict_laminar: no machine active";
  let keys = List.map fst (restriction_groups lam ~active) in
  Laminar.of_sets_exn ~m:(Laminar.m lam) keys

(* Restricted processing time: P'_j(γ ∩ S) = min over base sets with the
   same intersection.  Monotone: for σ ⊆ τ in the restriction, any base
   achiever of τ either contains a base achiever of σ (nested, so the
   base monotonicity bounds it) or intersects down to σ = τ. *)
let active_instance lam ~active ~jobs =
  let groups = restriction_groups lam ~active in
  let lam' = Laminar.of_sets_exn ~m:(Laminar.m lam) (List.map fst groups) in
  let slot = Array.make (Laminar.size lam') [] in
  List.iter
    (fun (key, base_ids) ->
      match Laminar.find lam' key with
      | Some s' -> slot.(s') <- base_ids
      | None -> assert false)
    groups;
  let rows =
    List.map
      (fun (_, row) ->
        Array.map
          (fun base_ids ->
            List.fold_left
              (fun acc g -> Ptime.min acc row.(g))
              Ptime.Inf base_ids)
          slot)
      jobs
  in
  let inst = Instance.make_exn lam' (Array.of_list rows) in
  (inst, Array.of_list (List.mapi (fun k (id, _) -> (id, k)) jobs))

(* ---- static validation ------------------------------------------------ *)

let admissible row lam active =
  let ok = ref false in
  for s = 0 to Laminar.size lam - 1 do
    if
      Ptime.is_fin row.(s)
      && Array.exists (fun i -> active.(i)) (Laminar.members lam s)
    then ok := true
  done;
  !ok

let make lam evs =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  try
    let m = Laminar.m lam in
    let nsets = Laminar.size lam in
    for i = 0 to m - 1 do
      if Laminar.singleton lam i = None then
        fail "machine %d has no singleton set (online traces need a \
              singleton-complete family)" i
    done;
    let seen = Hashtbl.create 64 in
    let active = Array.make m true in
    let live : (int, Ptime.t array) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (id, ev) ->
        if id < 0 then fail "event id %d is negative" id;
        if Hashtbl.mem seen id then fail "duplicate event id %d" id;
        Hashtbl.add seen id ();
        match ev with
        | Arrive { ptimes } ->
            if Array.length ptimes <> nsets then
              fail "event %d: arrival row has %d entries, expected %d" id
                (Array.length ptimes) nsets;
            for s = 0 to nsets - 1 do
              match Laminar.parent lam s with
              | Some p when not (Ptime.leq ptimes.(s) ptimes.(p)) ->
                  fail "event %d: arrival row is not monotone (set %d > parent %d)"
                    id s p
              | _ -> ()
            done;
            if not (admissible ptimes lam active) then
              fail "event %d: arriving job has no admissible mask on the \
                    active machines" id;
            Hashtbl.add live id ptimes
        | Depart { job } ->
            if not (Hashtbl.mem live job) then
              fail "event %d: departure of job %d which is not live" id job;
            Hashtbl.remove live job
        | Drain { machine } ->
            if machine < 0 || machine >= m then
              fail "event %d: drain of machine %d out of range" id machine;
            if not active.(machine) then
              fail "event %d: machine %d already drained" id machine;
            active.(machine) <- false;
            if not (Array.exists Fun.id active) then
              fail "event %d: draining machine %d leaves no machine in service"
                id machine;
            Hashtbl.iter
              (fun job row ->
                if not (admissible row lam active) then
                  fail "event %d: draining machine %d leaves job %d without an \
                        admissible mask" id machine job)
              live)
      evs;
    Ok { lam; evs }
  with Bad msg -> err "%s" msg

let make_exn lam evs =
  match make lam evs with Ok t -> t | Error e -> invalid_arg ("Trace.make: " ^ e)

let pp fmt t =
  Format.fprintf fmt "@[<v>trace over %d machines / %d sets: %d event(s)@,"
    (Laminar.m t.lam) (Laminar.size t.lam) (length t);
  List.iter
    (fun (id, ev) ->
      match ev with
      | Arrive _ -> Format.fprintf fmt "  %d arrive@," id
      | Depart { job } -> Format.fprintf fmt "  %d depart %d@," id job
      | Drain { machine } -> Format.fprintf fmt "  %d drain %d@," id machine)
    t.evs;
  Format.fprintf fmt "@]"
