(* The online scheduler; algorithm and guarantees in the interface. *)

open Hs_model
open Hs_laminar
module Q = Hs_numeric.Q
module V = Hs_check.Verdict
module Json = Hs_obs.Json
module Metrics = Hs_obs.Metrics

let c_events = Metrics.counter "online.events"
let c_arrivals = Metrics.counter "online.arrivals"
let c_departures = Metrics.counter "online.departures"
let c_drains = Metrics.counter "online.drains"
let c_resolves = Metrics.counter "online.resolves"
let c_blocked = Metrics.counter "online.resolves.budget_blocked"
let c_migrated = Metrics.counter "online.migrated_volume"
let c_forced = Metrics.counter "online.forced_volume"

(* Wall milliseconds per event, on the shared service ladder.  Like the
   service.phase.* histograms this is intentionally nondeterministic —
   everything else the replay emits is byte-identical across runs. *)
let h_event_ms = Metrics.histogram ~buckets:Metrics.ms_buckets "online.event_ms"

type step = {
  event_id : int;
  event : Trace.event;
  live : int;
  active : int;
  makespan : int;
  t_lp : int;
  candidate : int;
  resolve_admitted : bool;
  adopted : bool;
  migrated : int;
  forced : int;
  migrated_total : int;
  forced_total : int;
  arrived_total : int;
  move_levels : int list;
  ratio : Q.t option;
  verdict : Hs_check.Verdict.t option;
}

type summary = {
  events : int;
  arrivals : int;
  departures : int;
  drains : int;
  resolves : int;
  adoptions : int;
  budget_blocked : int;
  arrived_volume : int;
  migrated_volume : int;
  forced_volume : int;
  final_makespan : int;
  max_ratio : Q.t option;
  mean_ratio : Q.t option;
  certified : int;
  check_failures : int;
}

type outcome = { steps : step list; summary : summary }

(* ---- session state ---------------------------------------------------- *)

type state = {
  lam : Laminar.t;
  beta : Q.t option;
  check : bool;
  lp : bool;
  active : bool array;
  warm : Hs_core.Approx.Exact.I.warm_store option;
      (* basis hints shared by the per-event re-solves: successive events
         solve near-identical relaxations, so each one warm-starts from
         the previous optimal basis (pivot savings only — the verdicts
         and schedules are warm-independent); [None] forces cold solves
         (the benchmark's comparison baseline) *)
  seen : (int, unit) Hashtbl.t;
  mutable live : (int * Ptime.t array) list;  (* arrival order *)
  assign : (int, int list) Hashtbl.t;  (* job id → members of its set *)
  mutable arrived : int;
  mutable migrated : int;
  mutable forced : int;
  mutable events : int;
  mutable arrivals : int;
  mutable departures : int;
  mutable drains : int;
  mutable resolves : int;
  mutable adoptions : int;
  mutable blocked : int;
  mutable final_makespan : int;
  mutable max_ratio : Q.t option;
  mutable ratio_sum : Q.t;
  mutable ratio_count : int;
  mutable certified : int;
  mutable check_failures : int;
}

let create ?beta ?(check = false) ?(lp = false) ?(warm_start = true) lam =
  let missing = ref None in
  for i = Laminar.m lam - 1 downto 0 do
    if Laminar.singleton lam i = None then missing := Some i
  done;
  match !missing with
  | Some i ->
      Error
        (Printf.sprintf
           "machine %d has no singleton set (online sessions need a \
            singleton-complete family)" i)
  | None ->
      Ok
        {
          lam;
          beta;
          check;
          lp;
          active = Array.make (Laminar.m lam) true;
          warm =
            (if warm_start then Some (Hs_core.Approx.Exact.I.warm_store ())
             else None);
          seen = Hashtbl.create 64;
          live = [];
          assign = Hashtbl.create 64;
          arrived = 0;
          migrated = 0;
          forced = 0;
          events = 0;
          arrivals = 0;
          departures = 0;
          drains = 0;
          resolves = 0;
          adoptions = 0;
          blocked = 0;
          final_makespan = 0;
          max_ratio = None;
          ratio_sum = Q.zero;
          ratio_count = 0;
          certified = 0;
          check_failures = 0;
        }

let summary st =
  {
    events = st.events;
    arrivals = st.arrivals;
    departures = st.departures;
    drains = st.drains;
    resolves = st.resolves;
    adoptions = st.adoptions;
    budget_blocked = st.blocked;
    arrived_volume = st.arrived;
    migrated_volume = st.migrated;
    forced_volume = st.forced;
    final_makespan = st.final_makespan;
    max_ratio = st.max_ratio;
    mean_ratio =
      (if st.ratio_count = 0 then None
       else Some (Q.div_int st.ratio_sum st.ratio_count));
    certified = st.certified;
    check_failures = st.check_failures;
  }

(* ---- dynamic validation (the incremental twin of Trace.make) ---------- *)

let admissible lam active row =
  let ok = ref false in
  for s = 0 to Laminar.size lam - 1 do
    if
      Ptime.is_fin row.(s)
      && Array.exists (fun i -> active.(i)) (Laminar.members lam s)
    then ok := true
  done;
  !ok

let validate st (id, ev) =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if id < 0 then err "event id %d is negative" id
  else if Hashtbl.mem st.seen id then err "duplicate event id %d" id
  else
    match ev with
    | Trace.Arrive { ptimes } ->
        let nsets = Laminar.size st.lam in
        if Array.length ptimes <> nsets then
          err "event %d: arrival row has %d entries, expected %d" id
            (Array.length ptimes) nsets
        else begin
          let bad = ref None in
          for s = 0 to nsets - 1 do
            match Laminar.parent st.lam s with
            | Some p when not (Ptime.leq ptimes.(s) ptimes.(p)) ->
                if !bad = None then bad := Some (s, p)
            | _ -> ()
          done;
          match !bad with
          | Some (s, p) ->
              err "event %d: arrival row is not monotone (set %d > parent %d)"
                id s p
          | None ->
              if not (admissible st.lam st.active ptimes) then
                err
                  "event %d: arriving job has no admissible mask on the \
                   active machines" id
              else Ok ()
        end
    | Trace.Depart { job } ->
        if List.mem_assoc job st.live then Ok ()
        else err "event %d: departure of job %d which is not live" id job
    | Trace.Drain { machine } ->
        if machine < 0 || machine >= Laminar.m st.lam then
          err "event %d: drain of machine %d out of range" id machine
        else if not st.active.(machine) then
          err "event %d: machine %d already drained" id machine
        else begin
          let survivors =
            Array.to_list st.active
            |> List.filteri (fun i a -> a && i <> machine)
            |> List.length
          in
          if survivors = 0 then
            err "event %d: draining machine %d leaves no machine in service" id
              machine
          else begin
            let after = Array.copy st.active in
            after.(machine) <- false;
            let stranded =
              List.find_opt
                (fun (_, row) -> not (admissible st.lam after row))
                st.live
            in
            match stranded with
            | Some (job, _) ->
                err
                  "event %d: draining machine %d leaves job %d without an \
                   admissible mask" id machine job
            | None -> Ok ()
          end
        end

(* ---- per-step computation --------------------------------------------- *)

(* Theorem IV.3 horizon of a partial placement, used by the greedy
   passes before the assignment array is complete. *)
let partial_horizon inst placed =
  let lam = Instance.laminar inst in
  let best = ref 0 in
  Array.iteri
    (fun k -> function
      | None -> ()
      | Some s ->
          let p = Ptime.value_exn (Instance.ptime inst ~job:k ~set:s) in
          if p > !best then best := p)
    placed;
  for alpha = 0 to Laminar.size lam - 1 do
    let vol = ref 0 in
    Array.iteri
      (fun k -> function
        | None -> ()
        | Some s ->
            if Laminar.subset lam s alpha then
              vol := !vol + Ptime.value_exn (Instance.ptime inst ~job:k ~set:s))
      placed;
    let card = Laminar.card lam alpha in
    let need = (!vol + card - 1) / card in
    if need > !best then best := need
  done;
  !best

(* Greedy placement: the admissible set minimising the resulting
   horizon, ties to the smallest cardinality, then the smallest id. *)
let place_greedy inst placed k =
  let lam = Instance.laminar inst in
  let best = ref None in
  for s = 0 to Laminar.size lam - 1 do
    if Ptime.is_fin (Instance.ptime inst ~job:k ~set:s) then begin
      placed.(k) <- Some s;
      let key = (partial_horizon inst placed, Laminar.card lam s, s) in
      match !best with
      | Some (k0, _) when k0 <= key -> ()
      | _ -> best := Some (key, s)
    end
  done;
  match !best with
  | Some (_, s) -> placed.(k) <- Some s
  | None -> assert false (* admissibility was validated *)

(* The artifacts a deferred certification needs; pure data so the CLI
   can fan the per-step checks out over domains. *)
type cert_input = {
  ci_inst : Instance.t;
  ci_assign : Assignment.t;
  ci_makespan : int;
  ci_t_lp : int;
  ci_admitted : bool;
  ci_migrated : Q.t;
  ci_allowed : Q.t option;
}

let certify ~lp ci =
  match
    Hs_core.Hierarchical.schedule ci.ci_inst ci.ci_assign ~tmax:ci.ci_makespan
  with
  | Error e ->
      V.make ~subject:"online-step"
        [
          V.fail ~invariant:"online.schedule"
            "scheduler failed at the certified horizon %d: %s" ci.ci_makespan e;
        ]
  | Ok sched ->
      Hs_check.Certify.online_step ~lp ci.ci_inst ci.ci_assign sched
        ~makespan:ci.ci_makespan ~t_lp:ci.ci_t_lp
        ~resolve_admitted:ci.ci_admitted ~migrated:ci.ci_migrated
        ~allowed:ci.ci_allowed

let allowance st =
  Option.map (fun b -> Q.mul b (Q.of_int st.arrived)) st.beta

let step_core st (id, ev) =
  match validate st (id, ev) with
  | Error e -> Error e
  | Ok () ->
      let t0 = Unix.gettimeofday () in
      Hashtbl.add st.seen id ();
      st.events <- st.events + 1;
      Metrics.incr c_events;
      (* Structural update. *)
      let drained = ref false in
      let fresh = ref None in
      (match ev with
      | Trace.Arrive { ptimes } ->
          st.arrivals <- st.arrivals + 1;
          Metrics.incr c_arrivals;
          let min_p = Array.fold_left Ptime.min Ptime.Inf ptimes in
          st.arrived <- st.arrived + Ptime.value_exn min_p;
          st.live <- st.live @ [ (id, ptimes) ];
          fresh := Some id
      | Trace.Depart { job } ->
          st.departures <- st.departures + 1;
          Metrics.incr c_departures;
          st.live <- List.remove_assoc job st.live;
          Hashtbl.remove st.assign job
      | Trace.Drain { machine } ->
          st.drains <- st.drains + 1;
          Metrics.incr c_drains;
          st.active.(machine) <- false;
          drained := true);
      let inst, idx = Trace.active_instance st.lam ~active:st.active ~jobs:st.live in
      let lam' = Instance.laminar inst in
      let n = Instance.njobs inst in
      (* Re-seat every live job on the current restricted family: a kept
         set keeps its (possibly shrunk) intersection when still
         admissible; stranded jobs and the fresh arrival go through the
         greedy pass, in arrival order.  Between drains the restriction
         is stable, so re-seating is the identity. *)
      let placed = Array.make n None in
      let forced_step = ref 0 in
      let forced_jobs = ref [] in
      let stranded = ref [] in
      Array.iteri
        (fun k (jid, _) ->
          if Some jid = !fresh then stranded := k :: !stranded
          else
            let mem = Hashtbl.find st.assign jid in
            let mem' = List.filter (fun i -> st.active.(i)) mem in
            let kept =
              if mem' = [] then None
              else
                match Laminar.find lam' mem' with
                | Some s when Ptime.is_fin (Instance.ptime inst ~job:k ~set:s)
                  ->
                    Some s
                | _ -> None
            in
            match kept with
            | Some s ->
                placed.(k) <- Some s;
                if mem' <> mem then forced_jobs := k :: !forced_jobs
            | None ->
                (* only a drain can strand an already-placed job *)
                assert !drained;
                stranded := k :: !stranded;
                forced_jobs := k :: !forced_jobs)
        idx;
      List.iter (place_greedy inst placed) (List.sort compare !stranded);
      let a = Array.map Option.get placed in
      List.iter
        (fun k ->
          forced_step :=
            !forced_step + Ptime.value_exn (Instance.ptime inst ~job:k ~set:a.(k)))
        !forced_jobs;
      st.forced <- st.forced + !forced_step;
      Metrics.add c_forced !forced_step;
      let cur_makespan = if n = 0 then 0 else Assignment.min_makespan inst a in
      (* One fresh Theorem V.2 re-solve of the active instance. *)
      let solve_result =
        if n = 0 then Ok (cur_makespan, 0, 0, a, true, false, 0)
        else begin
          st.resolves <- st.resolves + 1;
          Metrics.incr c_resolves;
          match Hs_core.Approx.Exact.solve_checked ?warm:st.warm inst with
          | Error e ->
              Error
                (Printf.sprintf "event %d: re-solve failed: %s" id
                   (Hs_core.Hs_error.to_string e))
          | Ok o ->
              let closed_lam = Instance.laminar o.Hs_core.Approx.Exact.instance in
              let cand =
                Array.map
                  (fun cs ->
                    match o.Hs_core.Approx.Exact.translate cs with
                    | Some s -> s
                    | None -> (
                        match
                          Laminar.find lam'
                            (Array.to_list (Laminar.members closed_lam cs))
                        with
                        | Some s -> s
                        | None -> assert false))
                  o.Hs_core.Approx.Exact.assignment
              in
              let cand_makespan = Assignment.min_makespan inst cand in
              let move_vol = ref 0 in
              Array.iteri
                (fun k s ->
                  if s <> a.(k) then
                    move_vol :=
                      !move_vol
                      + Ptime.value_exn (Instance.ptime inst ~job:k ~set:s))
                cand;
              let admitted =
                match st.beta with
                | None -> true
                | Some b ->
                    Q.leq
                      (Q.of_int (st.migrated + !move_vol))
                      (Q.mul b (Q.of_int st.arrived))
              in
              let improves = cand_makespan < cur_makespan in
              if admitted && improves then
                Ok
                  ( cand_makespan,
                    o.Hs_core.Approx.Exact.t_lp,
                    cand_makespan,
                    cand,
                    true,
                    true,
                    !move_vol )
              else begin
                if improves then begin
                  st.blocked <- st.blocked + 1;
                  Metrics.incr c_blocked
                end;
                Ok
                  ( cur_makespan,
                    o.Hs_core.Approx.Exact.t_lp,
                    cand_makespan,
                    a,
                    admitted,
                    false,
                    0 )
              end
        end
      in
      match solve_result with
      | Error e -> Error e
      | Ok (makespan, t_lp, candidate, final_a, admitted, adopted, moved) ->
          if adopted then begin
            st.adoptions <- st.adoptions + 1;
            st.migrated <- st.migrated + moved;
            Metrics.add c_migrated moved
          end;
          (* Commit: the assignment table holds member lists, which
             survive the next restriction change.  Each job that ends the
             step on a different member set than it started migrates once;
             the move's level is the height of the smallest base-family
             set spanning both homes (the latency model of [hsched
             simulate], so [--latencies] charges online moves the same
             way). *)
          let move_levels = ref [] in
          Array.iteri
            (fun k (jid, _) ->
              let after = Array.to_list (Laminar.members lam' final_a.(k)) in
              (match Hashtbl.find_opt st.assign jid with
              | Some before when before <> after -> (
                  match
                    Laminar.minimal_superset st.lam
                      (List.sort_uniq compare (before @ after))
                  with
                  | Some span -> move_levels := Laminar.height st.lam span :: !move_levels
                  | None -> ())
              | _ -> ());
              Hashtbl.replace st.assign jid after)
            idx;
          let move_levels = List.sort compare !move_levels in
          st.final_makespan <- makespan;
          let ratio =
            if t_lp > 0 then Some (Q.of_ints makespan t_lp) else None
          in
          (match ratio with
          | Some r ->
              st.ratio_sum <- Q.add st.ratio_sum r;
              st.ratio_count <- st.ratio_count + 1;
              st.max_ratio <-
                Some
                  (match st.max_ratio with
                  | None -> r
                  | Some m -> Q.max m r)
          | None -> ());
          let step =
            {
              event_id = id;
              event = ev;
              live = n;
              active =
                Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0
                  st.active;
              makespan;
              t_lp;
              candidate;
              resolve_admitted = admitted;
              adopted;
              migrated = moved;
              forced = !forced_step;
              migrated_total = st.migrated;
              forced_total = st.forced;
              arrived_total = st.arrived;
              move_levels;
              ratio;
              verdict = None;
            }
          in
          let ci =
            {
              ci_inst = inst;
              ci_assign = final_a;
              ci_makespan = makespan;
              ci_t_lp = t_lp;
              ci_admitted = admitted;
              ci_migrated = Q.of_int st.migrated;
              ci_allowed = allowance st;
            }
          in
          Metrics.observe h_event_ms
            (int_of_float (((Unix.gettimeofday () -. t0) *. 1000.0) +. 0.5));
          Ok (step, ci)

module Session = struct
  type t = state

  let create = create

  let step st ev =
    match step_core st ev with
    | Error e -> Error e
    | Ok (step, ci) ->
        if not st.check then Ok step
        else begin
          let v = certify ~lp:st.lp ci in
          if V.ok v then st.certified <- st.certified + 1
          else st.check_failures <- st.check_failures + 1;
          Ok { step with verdict = Some v }
        end

  let summary = summary
end

let run ?beta ?(check = false) ?(lp = false) ?(jobs = 1) ?warm_start trace =
  match create ?beta ~check:false ~lp ?warm_start (Trace.laminar trace) with
  | Error e -> Error e
  | Ok st -> (
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | ev :: rest -> (
            match step_core st ev with
            | Error e -> Error e
            | Ok pair -> go (pair :: acc) rest)
      in
      match go [] (Trace.events trace) with
      | Error e -> Error e
      | Ok pairs ->
          let steps =
            if not check then List.map fst pairs
            else begin
              let jobs = Hs_exec.resolve_jobs jobs in
              let verdicts =
                Hs_exec.parmap ~jobs (certify ~lp) (List.map snd pairs)
              in
              List.map2
                (fun (step, _) v ->
                  if V.ok v then st.certified <- st.certified + 1
                  else st.check_failures <- st.check_failures + 1;
                  { step with verdict = Some v })
                pairs verdicts
            end
          in
          Ok { steps; summary = summary st })

let vs_baseline outcome ~baseline =
  let rec go max_r sum count a b =
    match (a, b) with
    | [], _ | _, [] ->
        if count = 0 then (None, None)
        else (Some max_r, Some (Q.div_int sum count))
    | sa :: ra, sb :: rb ->
        if sb.makespan > 0 then
          let r = Q.of_ints sa.makespan sb.makespan in
          go
            (if count = 0 then r else Q.max max_r r)
            (Q.add sum r) (count + 1) ra rb
        else go max_r sum count ra rb
  in
  go Q.zero Q.zero 0 outcome.steps baseline.steps

(* ---- rendering -------------------------------------------------------- *)

let decimal q =
  let scaled = Q.floor_int (Q.mul_int q 1000) in
  Printf.sprintf "%d.%03d" (scaled / 1000) (scaled mod 1000)

let event_cell id = function
  | Trace.Arrive _ -> Printf.sprintf "%d arrive" id
  | Trace.Depart { job } -> Printf.sprintf "%d depart %d" id job
  | Trace.Drain { machine } -> Printf.sprintf "%d drain %d" id machine

let kind_name = function
  | Trace.Arrive _ -> "arrive"
  | Trace.Depart _ -> "depart"
  | Trace.Drain _ -> "drain"

let resolve_cell (s : step) =
  if s.live = 0 then "-"
  else if s.adopted then "adopted"
  else if s.candidate < s.makespan then "budget"  (* improvement refused *)
  else "kept"

let check_cell (s : step) =
  match s.verdict with
  | None -> ""
  | Some v -> if V.ok v then "  ok" else "  FAIL"

let render_table buf (steps : step list) =
  let has_check = List.exists (fun s -> s.verdict <> None) steps in
  Buffer.add_string buf
    (Printf.sprintf "%-16s %5s %9s %5s %8s %-8s %6s %6s%s\n" "event" "live"
       "makespan" "T*" "ratio" "resolve" "moved" "forced"
       (if has_check then "  check" else ""));
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%-16s %5d %9d %5d %8s %-8s %6d %6d%s\n"
           (event_cell s.event_id s.event)
           s.live s.makespan s.t_lp
           (match s.ratio with None -> "-" | Some r -> decimal r)
           (resolve_cell s) s.migrated s.forced (check_cell s)))
    steps

let render_summary buf ?beta (s : summary) =
  let q_opt = function None -> "-" | Some r -> decimal r in
  Buffer.add_string buf
    (Printf.sprintf "events %d (arrivals %d, departures %d, drains %d)\n"
       s.events s.arrivals s.departures s.drains);
  Buffer.add_string buf
    (Printf.sprintf "re-solves %d: adopted %d, budget-blocked %d%s\n"
       s.resolves s.adoptions s.budget_blocked
       (match beta with
       | None -> " (unlimited budget)"
       | Some b -> Printf.sprintf " (beta = %s)" (Q.to_string b)));
  Buffer.add_string buf
    (Printf.sprintf "volume: arrived %d, migrated %d, drain-forced %d\n"
       s.arrived_volume s.migrated_volume s.forced_volume);
  Buffer.add_string buf (Printf.sprintf "final makespan %d\n" s.final_makespan);
  Buffer.add_string buf
    (Printf.sprintf "ratio vs fresh T*: max %s, mean %s\n" (q_opt s.max_ratio)
       (q_opt s.mean_ratio));
  if s.certified + s.check_failures > 0 then
    Buffer.add_string buf
      (Printf.sprintf "certified %d/%d steps%s\n" s.certified s.events
         (if s.check_failures > 0 then
            Printf.sprintf " (%d FAILED)" s.check_failures
          else ""))

(* ---- JSON ------------------------------------------------------------- *)

let q_json = function None -> Json.Null | Some r -> Json.String (Q.to_string r)

let step_to_json (s : step) =
  let specific =
    match s.event with
    | Trace.Arrive _ -> []
    | Trace.Depart { job } -> [ ("job", Json.Int job) ]
    | Trace.Drain { machine } -> [ ("machine", Json.Int machine) ]
  in
  Json.Obj
    ([ ("event", Json.Int s.event_id); ("kind", Json.String (kind_name s.event)) ]
    @ specific
    @ [
        ("live", Json.Int s.live);
        ("active", Json.Int s.active);
        ("makespan", Json.Int s.makespan);
        ("t_lp", Json.Int s.t_lp);
        ("candidate", Json.Int s.candidate);
        ("resolve_admitted", Json.Bool s.resolve_admitted);
        ("adopted", Json.Bool s.adopted);
        ("migrated", Json.Int s.migrated);
        ("forced", Json.Int s.forced);
        ("migrated_total", Json.Int s.migrated_total);
        ("forced_total", Json.Int s.forced_total);
        ("arrived_total", Json.Int s.arrived_total);
        ("move_levels", Json.List (List.map (fun l -> Json.Int l) s.move_levels));
        ("ratio", q_json s.ratio);
      ]
    @
    match s.verdict with
    | None -> []
    | Some v -> (
        [ ("check_ok", Json.Bool (V.ok v)) ]
        @
        match V.first_failure v with
        | None -> []
        | Some item ->
            [
              ("check_failure", Json.String (item.V.invariant ^ ": " ^ item.V.detail));
            ]))

let summary_to_json (s : summary) =
  Json.Obj
    [
      ("events", Json.Int s.events);
      ("arrivals", Json.Int s.arrivals);
      ("departures", Json.Int s.departures);
      ("drains", Json.Int s.drains);
      ("resolves", Json.Int s.resolves);
      ("adoptions", Json.Int s.adoptions);
      ("budget_blocked", Json.Int s.budget_blocked);
      ("arrived_volume", Json.Int s.arrived_volume);
      ("migrated_volume", Json.Int s.migrated_volume);
      ("forced_volume", Json.Int s.forced_volume);
      ("final_makespan", Json.Int s.final_makespan);
      ("max_ratio", q_json s.max_ratio);
      ("mean_ratio", q_json s.mean_ratio);
      ("certified", Json.Int s.certified);
      ("check_failures", Json.Int s.check_failures);
    ]

let outcome_to_json o =
  Json.Obj
    [
      ("schema", Json.String "hsched.online/1");
      ("steps", Json.List (List.map step_to_json o.steps));
      ("summary", summary_to_json o.summary);
    ]

(* Wire decoding, the streaming client's half: enough of a step comes
   back to re-render tables and summaries byte-identically.  The arrival
   row and the verdict's item list are deliberately not carried — the
   reconstructed verdict keeps only the pass/fail outcome and the first
   failure's diagnostic. *)

let int_member k j =
  match Json.member k j with Some (Json.Int v) -> Some v | _ -> None

let bool_member k j =
  match Json.member k j with Some (Json.Bool v) -> Some v | _ -> None

let string_member k j =
  match Json.member k j with Some (Json.String v) -> Some v | _ -> None

let q_member k j =
  match Json.member k j with
  | Some (Json.String s) -> (
      match Q.of_string s with q -> Some q | exception _ -> None)
  | _ -> None

let step_of_json j =
  let req k = match int_member k j with Some v -> Ok v | None -> Error k in
  let reqb k = match bool_member k j with Some v -> Ok v | None -> Error k in
  let ( let* ) r f = match r with Error k -> Error ("step has no " ^ k) | Ok v -> f v in
  let* event_id = req "event" in
  let* kind = match string_member "kind" j with Some k -> Ok k | None -> Error "kind" in
  let* event =
    match kind with
    | "arrive" -> Ok (Trace.Arrive { ptimes = [||] })
    | "depart" ->
        let* job = req "job" in
        Ok (Trace.Depart { job })
    | "drain" ->
        let* machine = req "machine" in
        Ok (Trace.Drain { machine })
    | k -> Error (Printf.sprintf "kind (unknown %S)" k)
  in
  let* live = req "live" in
  let* active = req "active" in
  let* makespan = req "makespan" in
  let* t_lp = req "t_lp" in
  let* candidate = req "candidate" in
  let* resolve_admitted = reqb "resolve_admitted" in
  let* adopted = reqb "adopted" in
  let* migrated = req "migrated" in
  let* forced = req "forced" in
  let* migrated_total = req "migrated_total" in
  let* forced_total = req "forced_total" in
  let* arrived_total = req "arrived_total" in
  let move_levels =
    match Json.member "move_levels" j with
    | Some (Json.List l) ->
        List.filter_map (function Json.Int v -> Some v | _ -> None) l
    | _ -> []
  in
  let verdict =
    match bool_member "check_ok" j with
    | None -> None
    | Some true ->
        Some (V.make ~subject:"online-step" [ V.pass ~invariant:"online.step" "certified" ])
    | Some false ->
        let detail =
          Option.value ~default:"certification failed"
            (string_member "check_failure" j)
        in
        Some (V.make ~subject:"online-step" [ V.fail ~invariant:"online.step" "%s" detail ])
  in
  Ok
    {
      event_id;
      event;
      live;
      active;
      makespan;
      t_lp;
      candidate;
      resolve_admitted;
      adopted;
      migrated;
      forced;
      migrated_total;
      forced_total;
      arrived_total;
      move_levels;
      ratio = q_member "ratio" j;
      verdict;
    }

let summary_of_json j =
  let req k = match int_member k j with Some v -> Ok v | None -> Error k in
  let ( let* ) r f =
    match r with Error k -> Error ("summary has no " ^ k) | Ok v -> f v
  in
  let* events = req "events" in
  let* arrivals = req "arrivals" in
  let* departures = req "departures" in
  let* drains = req "drains" in
  let* resolves = req "resolves" in
  let* adoptions = req "adoptions" in
  let* budget_blocked = req "budget_blocked" in
  let* arrived_volume = req "arrived_volume" in
  let* migrated_volume = req "migrated_volume" in
  let* forced_volume = req "forced_volume" in
  let* final_makespan = req "final_makespan" in
  let* certified = req "certified" in
  let* check_failures = req "check_failures" in
  Ok
    {
      events;
      arrivals;
      departures;
      drains;
      resolves;
      adoptions;
      budget_blocked;
      arrived_volume;
      migrated_volume;
      forced_volume;
      final_makespan;
      max_ratio = q_member "max_ratio" j;
      mean_ratio = q_member "mean_ratio" j;
      certified;
      check_failures;
    }
