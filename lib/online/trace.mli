(** Typed event traces for the online scheduling subsystem (DESIGN.md §15).

    A trace is a laminar machine family plus a sequence of timestamped
    events over it: job arrivals (carrying a full processing-time row
    over the family, monotone like any {!Hs_model.Instance} row), job
    departures (referencing the arrival's event id) and machine drains
    (the machine leaves service; the active family becomes the
    restriction of the base family to the surviving machines).

    Construction is total and {e statically validated}: {!make} replays
    the liveness/availability bookkeeping once, so a well-formed trace
    can never strand the online scheduler mid-replay — every departure
    names a live job, every drain names an active machine and leaves at
    least one machine in service, and every job keeps an admissible mask
    on the machines active for its whole lifetime.  Event ids must be
    unique (duplicates are rejected here, mirroring the duplicate-set
    rejection of {!Hs_model.Instance_io}). *)

open Hs_model
open Hs_laminar

type event =
  | Arrive of { ptimes : Ptime.t array }
      (** one processing time per set of the base family, in set order;
          the arriving job's identity is the event's id *)
  | Depart of { job : int }  (** [job] is the arrival's event id *)
  | Drain of { machine : int }  (** the machine leaves service *)

type t

(** {1 Accessors} *)

val laminar : t -> Laminar.t
(** The base family; singleton-complete by construction. *)

val events : t -> (int * event) list
(** [(id, event)] pairs in trace order. *)

val length : t -> int
val arrivals : t -> int
val departures : t -> int
val drains : t -> int

(** {1 Construction} *)

val make : Laminar.t -> (int * event) list -> (t, string) result
(** Validates the whole trace statically: the family must be
    singleton-complete (every machine's singleton present, so drains
    restrict it cleanly), event ids unique and non-negative, arrival
    rows of the right arity, monotone, with at least one finite entry;
    departures must name a job that has arrived and not yet departed;
    drains must name a distinct machine and leave at least one active;
    and every job must keep a finite mask on a set intersecting the
    active machines throughout its lifetime. *)

val make_exn : Laminar.t -> (int * event) list -> t

val restrict_laminar : Laminar.t -> active:bool array -> Laminar.t
(** The restriction of a family to the active machines: the non-empty
    intersections [γ ∩ S], deduplicated.  Machine ids are preserved.
    Raises [Invalid_argument] when no machine is active. *)

val active_instance :
  Laminar.t ->
  active:bool array ->
  jobs:(int * Ptime.t array) list ->
  Instance.t * (int * int) array
(** The instance the online scheduler solves at one step: the restricted
    family over the live jobs, where a restricted set's processing time
    is the minimum over the base sets intersecting to it (monotone
    because intersection preserves nesting).  Also returns the job-row
    mapping: [(id, instance_job_index)] in the order the rows were laid
    out (the order of [jobs]). *)

val pp : Format.formatter -> t -> unit
