(** Plain-text trace files.

    Format (comments start with [#], blank lines ignored):

    {v
    hsched-trace 1
    machines 4
    sets 7
    0 1 2 3
    0 1
    2 3
    0
    1
    2
    3
    events 4
    0 arrive 9 7 7 4 5 inf inf
    1 arrive 6 6 inf 3 3 inf inf
    2 depart 0
    3 drain 2
    v}

    An [arrive] line lists one processing time per set in set order
    ([inf] marks an inadmissible mask); the arriving job's identity is
    the leading event id.  The family and the event sequence are
    validated by {!Trace.make} — duplicate event ids are rejected, like
    duplicate set lines in {!Hs_model.Instance_io}. *)

val to_string : Trace.t -> string

val of_string : string -> (Trace.t, string) result
(** Total on untrusted input: never raises. *)

val canonicalize : Trace.t -> string
(** Canonical form: the same format with the family sorted
    lexicographically and every arrival row permuted to match.  Event
    ids and order are semantics, so they are preserved verbatim.  Two
    trace files differing only in whitespace, comments or set order
    canonicalise — and hash — identically. *)

val digest : Trace.t -> string
(** MD5 hex of {!canonicalize}; the identity the daemon's flight
    recorder and the bench harness key online sessions by. *)

val load : string -> (Trace.t, string) result
val save : string -> Trace.t -> (unit, string) result

(** {1 Single-event codec}

    The streaming surfaces (the daemon's [online] verb) carry one event
    per message in exactly the file syntax, so a trace file is the
    concatenation of its event lines and vice versa. *)

val event_to_line : int * Trace.event -> string

val event_of_line : string -> (int * Trace.event, string) result
(** Parses one event line; the row arity of an [arrive] is checked
    later, when the event is applied against a family. *)
