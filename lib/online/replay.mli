(** The online scheduler (DESIGN.md §15): maintain a certified assignment
    of the live jobs on the active machines across a stream of
    {!Trace.event}s, re-solving with the Theorem V.2 pipeline under a
    configurable migration budget.

    {b State.}  After every event the scheduler holds an assignment of
    each live job to an admissible set of the {e active} family (the base
    family restricted to the machines not yet drained) and reports its
    Theorem IV.3 minimal horizon as the current makespan.

    {b Per-event algorithm.}  First the structural change: an arriving
    job is placed greedily on the admissible set minimising the resulting
    horizon (placement of a new job is free); a departure frees its
    volume; a drain restricts the family and force-migrates the stranded
    jobs (forced moves are exempt from the budget, accounted separately).
    Then one fresh {!Hs_core.Approx.Exact.solve} of the active instance
    yields the certified lower bound [T*] and a 2-approximate candidate
    assignment.  The candidate is adopted iff the cumulative voluntarily
    migrated volume stays within [β ·] (total arrived volume) — exact
    rationals — {e and} it strictly improves the makespan.

    {b Guarantee.}  Whenever the budget admits the re-solve, the current
    makespan is ≤ 2·T* against the {e fresh} lower bound (adopted, or
    strictly better than the candidate); with an unlimited budget every
    step is therefore within the Theorem V.2 envelope.  Every step can be
    certified end-to-end by {!Hs_check.Certify.online_step}.

    Replay is sequential and deterministic; [?jobs] parallelises only the
    per-step certification (a pure function of recorded step artifacts),
    so output is byte-identical at any job count. *)

open Hs_laminar
module Q = Hs_numeric.Q

type step = {
  event_id : int;
  event : Trace.event;
  live : int;  (** live jobs after the event *)
  active : int;  (** machines still in service *)
  makespan : int;  (** Theorem IV.3 horizon of the current assignment *)
  t_lp : int;  (** fresh LP lower bound on OPT of the active instance *)
  candidate : int;  (** makespan of the fresh re-solve's assignment *)
  resolve_admitted : bool;  (** adopting the candidate fit the budget *)
  adopted : bool;  (** candidate adopted (admitted and strictly better) *)
  migrated : int;  (** voluntary volume migrated at this step *)
  forced : int;  (** drain-forced volume migrated at this step *)
  migrated_total : int;  (** cumulative voluntary volume *)
  forced_total : int;
  arrived_total : int;  (** cumulative arrived volume (min finite times) *)
  move_levels : int list;
      (** one entry (sorted) per job whose member set changed at this
          step: the height of the smallest base-family set spanning the
          old and new homes — the latency model of [hsched simulate],
          so migration stalls can be charged per level *)
  ratio : Q.t option;  (** makespan / T*; [None] when T* = 0 *)
  verdict : Hs_check.Verdict.t option;  (** present when checking *)
}

type summary = {
  events : int;
  arrivals : int;
  departures : int;
  drains : int;
  resolves : int;  (** fresh re-solves performed (= non-empty steps) *)
  adoptions : int;
  budget_blocked : int;  (** re-solves the budget refused to adopt *)
  arrived_volume : int;
  migrated_volume : int;  (** voluntary, counted against the budget *)
  forced_volume : int;  (** drain-forced, exempt *)
  final_makespan : int;
  max_ratio : Q.t option;  (** over steps with T* > 0 *)
  mean_ratio : Q.t option;
  certified : int;  (** steps carrying a passing verdict *)
  check_failures : int;
}

type outcome = { steps : step list; summary : summary }

(** {1 Streaming sessions}

    The incremental surface behind the daemon's [online] verb: events
    arrive one by one and are validated {e dynamically} (same rules as
    {!Trace.make} — unknown ids, stranded jobs and last-machine drains
    are rejected without corrupting the session). *)

module Session : sig
  type t

  val create :
    ?beta:Q.t ->
    ?check:bool ->
    ?lp:bool ->
    ?warm_start:bool ->
    Laminar.t ->
    (t, string) result
  (** [beta] is the migration budget coefficient (absent = unlimited);
      [check] certifies every step inline; [lp] additionally re-derives
      each step's lower bound inside the certificate; [warm_start]
      (default [true]) threads a basis store through the per-event
      re-solves so each LP starts from the previous optimal basis —
      schedules and verdicts are identical either way, only pivot
      counts change (the benchmark replays cold for comparison).  Fails
      unless the family is singleton-complete. *)

  val step : t -> int * Trace.event -> (step, string) result
  (** Apply one event.  An [Error] rejects the event and leaves the
      session state untouched. *)

  val summary : t -> summary
end

val run :
  ?beta:Q.t ->
  ?check:bool ->
  ?lp:bool ->
  ?jobs:int ->
  ?warm_start:bool ->
  Trace.t ->
  (outcome, string) result
(** Replay a whole (statically validated) trace.  With [check], step
    certification fans out over [jobs] domains ({!Hs_exec.parmap});
    everything else is sequential, so the outcome is identical at any
    [jobs].  [warm_start] as in {!Session.create}. *)

val vs_baseline : outcome -> baseline:outcome -> Q.t option * Q.t option
(** [(max, mean)] per-step makespan ratio of an outcome against a replay
    of the same trace — pass the unlimited-budget replay as [baseline]
    for the competitive-ratio-vs-clairvoyant harness.  Steps where the
    baseline makespan is [0] are skipped; [None] when no step counts. *)

(** {1 Rendering} *)

val decimal : Q.t -> string
(** Deterministic 3-decimal fixed-point rendering (rounded down). *)

val step_to_json : step -> Hs_obs.Json.t
val summary_to_json : summary -> Hs_obs.Json.t

val outcome_to_json : outcome -> Hs_obs.Json.t
(** [{"schema": "hsched.online/1", "steps": [...], "summary": {...}}]. *)

val step_of_json : Hs_obs.Json.t -> (step, string) result
(** Decode a wire step (the body of the daemon's [online event] answer).
    Rendering-faithful, not lossless: the arrival row comes back empty
    and a reconstructed verdict keeps only the pass/fail outcome and the
    first failure's diagnostic — exactly what {!render_table} needs, so
    a streamed table matches the offline one byte for byte. *)

val summary_of_json : Hs_obs.Json.t -> (summary, string) result

val render_table : Buffer.t -> step list -> unit
(** The per-event table of [hsched online]. *)

val render_summary : Buffer.t -> ?beta:Q.t -> summary -> unit
