(* Plain-text trace files; format in the interface. *)

open Hs_model
open Hs_laminar

let version_line = "hsched-trace 1"

let event_to_line (id, ev) =
  match ev with
  | Trace.Arrive { ptimes } ->
      Printf.sprintf "%d arrive %s" id
        (String.concat " "
           (Array.to_list (Array.map Ptime.to_string ptimes)))
  | Trace.Depart { job } -> Printf.sprintf "%d depart %d" id job
  | Trace.Drain { machine } -> Printf.sprintf "%d drain %d" id machine

let event_of_line line =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let cells =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  in
  let time s =
    if s = "inf" then Some Ptime.Inf
    else
      match int_of_string_opt s with
      | Some v when v >= 0 -> Some (Ptime.fin v)
      | _ -> None
  in
  match cells with
  | id :: kind :: rest -> (
      match int_of_string_opt id with
      | None -> err "invalid event id '%s'" id
      | Some id -> (
          match (kind, rest) with
          | "arrive", _ :: _ -> (
              let rec times acc = function
                | [] -> Some (List.rev acc)
                | s :: rest -> (
                    match time s with
                    | Some t -> times (t :: acc) rest
                    | None -> None)
              in
              match times [] rest with
              | Some ts ->
                  Ok (id, Trace.Arrive { ptimes = Array.of_list ts })
              | None -> err "event %d: invalid processing time in '%s'" id line)
          | "depart", [ job ] -> (
              match int_of_string_opt job with
              | Some job -> Ok (id, Trace.Depart { job })
              | None -> err "event %d: invalid job id '%s'" id job)
          | "drain", [ machine ] -> (
              match int_of_string_opt machine with
              | Some machine -> Ok (id, Trace.Drain { machine })
              | None -> err "event %d: invalid machine id '%s'" id machine)
          | _ -> err "malformed event line '%s'" line))
  | _ -> err "malformed event line '%s'" line

(* Rendering, parameterised by the set order so [to_string] (id order)
   and [canonicalize] (lexicographic order) share one body.  [perm.(k)]
   is the base set id printed in column [k]. *)
let render t perm =
  let lam = Trace.laminar t in
  let sets = Array.of_list (Laminar.sets lam) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf version_line;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "machines %d\n" (Laminar.m lam));
  Buffer.add_string buf (Printf.sprintf "sets %d\n" (Laminar.size lam));
  Array.iter
    (fun s ->
      Buffer.add_string buf
        (String.concat " " (List.map string_of_int sets.(s)));
      Buffer.add_char buf '\n')
    perm;
  let evs = Trace.events t in
  Buffer.add_string buf (Printf.sprintf "events %d\n" (List.length evs));
  List.iter
    (fun (id, ev) ->
      let ev =
        match ev with
        | Trace.Arrive { ptimes } ->
            Trace.Arrive { ptimes = Array.map (fun s -> ptimes.(s)) perm }
        | e -> e
      in
      Buffer.add_string buf (event_to_line (id, ev));
      Buffer.add_char buf '\n')
    evs;
  Buffer.contents buf

let to_string t =
  render t (Array.init (Laminar.size (Trace.laminar t)) Fun.id)

let canonicalize t =
  let lam = Trace.laminar t in
  let sets = Array.of_list (Laminar.sets lam) in
  let perm = Array.init (Laminar.size lam) Fun.id in
  Array.sort (fun a b -> compare sets.(a) sets.(b)) perm;
  render t perm

let digest t = Digest.to_hex (Digest.string (canonicalize t))

let of_string text =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  try
    let lines =
      match lines with
      | v :: rest
        when String.split_on_char ' ' v |> List.filter (( <> ) "")
             = String.split_on_char ' ' version_line ->
          rest
      | v :: _ -> fail "expected '%s' header, got '%s'" version_line v
      | [] -> fail "empty trace file"
    in
    let expect_header name = function
      | line :: rest -> (
          match
            String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
          with
          | [ key; v ] when key = name -> (
              match int_of_string_opt v with
              | Some k when k >= 0 -> (k, rest)
              | _ -> fail "invalid %s count: %s" name v)
          | _ -> fail "expected '%s <count>', got '%s'" name line)
      | [] -> fail "missing '%s <count>' header" name
    in
    let take k lines what =
      let rec go k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> fail "unexpected end of file reading %s" what
        | l :: rest -> go (k - 1) (l :: acc) rest
      in
      go k [] lines
    in
    let m, lines = expect_header "machines" lines in
    let nsets, lines = expect_header "sets" lines in
    let set_lines, lines = take nsets lines "sets" in
    let sets =
      List.map
        (fun line ->
          String.split_on_char ' ' line
          |> List.filter (fun s -> s <> "")
          |> List.map (fun s ->
                 match int_of_string_opt s with
                 | Some v -> v
                 | None -> fail "invalid machine index '%s'" s))
        set_lines
    in
    (* Same duplicate-line rejection as Instance_io: the file and the
       parsed model must not disagree about what was written. *)
    (let seen = Hashtbl.create 16 in
     List.iteri
       (fun k members ->
         let key = List.sort compare members in
         match Hashtbl.find_opt seen key with
         | Some k0 -> fail "set %d duplicates set %d" k k0
         | None -> Hashtbl.add seen key k)
       sets);
    let nevents, lines = expect_header "events" lines in
    let event_lines, rest = take nevents lines "events" in
    if rest <> [] then fail "trailing content after event lines";
    let evs =
      List.map
        (fun line ->
          match event_of_line line with
          | Ok ev -> ev
          | Error e -> fail "%s" e)
        event_lines
    in
    match Laminar.of_sets ~m sets with
    | Error e -> Error e
    | Ok lam -> Trace.make lam evs
  with
  | Bad msg -> err "%s" msg
  | Stack_overflow -> err "input too deeply nested"
  | Division_by_zero | Invalid_argument _ | Failure _ | Not_found | Sys_error _
    ->
      err "malformed trace text"

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e

let save path t =
  match
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (to_string t))
  with
  | () -> Ok ()
  | exception Sys_error e -> Error e
